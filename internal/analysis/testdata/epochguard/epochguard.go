// Package shard is the violation fixture for the epochguard analyzer: a
// miniature of the real shard router's membership protocol, with one
// function per rule breaking it and the guarded counterparts passing.
package shard

import (
	"net/http"
	"strconv"
	"sync"
)

// EpochHeader mirrors the api package's header constant.
const EpochHeader = "Hpas-Epoch"

type member struct {
	name string
}

// membership is the epoch-versioned member set; its method names are
// the contract the analyzer keys on.
type membership struct {
	mu    sync.Mutex
	epoch uint64
	set   map[string]*member
}

func (mem *membership) version() (uint64, uint64) {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	return mem.epoch, uint64(len(mem.set))
}

func (mem *membership) add(m *member) uint64 {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	mem.set[m.name] = m
	mem.epoch++
	return mem.epoch
}

func (mem *membership) bump() uint64 {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	mem.epoch++
	return mem.epoch
}

func (mem *membership) detach(name string) bool {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	_, ok := mem.set[name]
	delete(mem.set, name)
	return ok
}

type replRecord struct {
	kind string
}

type router struct {
	fomu    sync.Mutex
	mem     *membership
	pending []replRecord
	peers   []string
}

// goodAdd is the sanctioned shape: failover lock, CAS epoch check,
// mutate, journal, flush.
func (rt *router) goodAdd(m *member, expectEpoch uint64) error {
	rt.fomu.Lock()
	epoch, _ := rt.mem.version()
	if expectEpoch != 0 && expectEpoch != epoch {
		rt.fomu.Unlock()
		return errStale
	}
	rt.mem.add(m)
	rt.fomu.Unlock()
	rt.recordMutation("join", m.name)
	rt.flushReplication()
	return nil
}

// badBump mutates with no CAS check and no failover lock: both rules
// fire at the same call.
func (rt *router) badBump() {
	rt.mem.bump()
}

// detachMember has no guard of its own; its only callers are guarded,
// so the caller-propagation fixpoint accepts it.
func (rt *router) detachMember(name string) {
	rt.mem.detach(name)
}

func (rt *router) goodRemove(name string, expectEpoch uint64) error {
	rt.fomu.Lock()
	epoch, _ := rt.mem.version()
	if expectEpoch != 0 && expectEpoch != epoch {
		rt.fomu.Unlock()
		return errStale
	}
	rt.detachMember(name)
	rt.fomu.Unlock()
	return nil
}

// badOrder forwards before journaling: the flush runs on a ledger the
// mutation has not reached yet.
func (rt *router) badOrder(name string) {
	rt.flushReplication()
	rt.recordMutation("remove", name)
}

// badDirectForward skips the ledger entirely.
func (rt *router) badDirectForward(peer string) {
	rt.forwardRecord(peer, replRecord{kind: "join"})
}

func (rt *router) recordMutation(kind, name string) {
	rt.pending = append(rt.pending, replRecord{kind: kind + ":" + name})
}

func (rt *router) flushReplication() {
	for _, peer := range rt.peers {
		for _, rec := range rt.pending {
			rt.forwardRecord(peer, rec)
		}
	}
	rt.pending = nil
}

func (rt *router) forwardRecord(peer string, rec replRecord) bool {
	return peer != "" && rec.kind != ""
}

// Epoch reads the current epoch for the middleware.
func (rt *router) Epoch() uint64 {
	e, _ := rt.mem.version()
	return e
}

// withEpoch stamps every response, like the real router's middleware.
func (rt *router) withEpoch(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(EpochHeader, strconv.FormatUint(rt.Epoch(), 10))
		next.ServeHTTP(w, r)
	})
}

// plainWrap wraps without stamping — returning it from a mux builder is
// a violation.
func (rt *router) plainWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
	})
}

// goodHandler returns the epoch-stamping middleware.
func (rt *router) goodHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/members", func(w http.ResponseWriter, r *http.Request) {})
	return rt.withEpoch(mux)
}

// badBareMux returns the mux with no epoch middleware.
func (rt *router) badBareMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/members", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}

// badUnstampedWrap wraps, but the wrapper never sets the header.
func (rt *router) badUnstampedWrap() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/members", func(w http.ResponseWriter, r *http.Request) {})
	return rt.plainWrap(mux)
}

var errStale = http.ErrAbortHandler
