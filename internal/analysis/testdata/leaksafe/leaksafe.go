// Package leaksafe is the violation fixture for the leaksafe analyzer:
// every "bad" function spawns a goroutine with no boundedness evidence,
// every "good" one shows an accepted proof shape.
package leaksafe

import (
	"context"
	"sync"
	"time"
)

type worker struct {
	stop chan struct{}
	out  chan int
}

// badForever spawns an infinite loop that observes nothing.
func badForever() {
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

// badTick leaks the shared ticker even though the loop is stop-bounded.
func (w *worker) badTick() {
	go func() {
		for {
			select {
			case <-time.Tick(time.Second):
			case <-w.stop:
				return
			}
		}
	}()
}

// badSend is the classic one-shot result leak: if the receiver gives up,
// the send blocks forever.
func badSend() {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	<-ch
}

// goodBufferedSend is the sanctioned version of badSend.
func goodBufferedSend() {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	<-ch
}

// goodCtx observes cancellation directly.
func goodCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

// goodStopChan observes a stop-named channel.
func (w *worker) goodStopChan() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case w.out <- 1:
			}
		}
	}()
}

// loop observes cancellation; runLoop spawns it through the call graph —
// the boundedness evidence is interprocedural.
func (w *worker) loop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case w.out <- 2:
		}
	}
}

func (w *worker) runLoop(ctx context.Context) {
	go w.loop(ctx)
}

// badSpawnHelper spawns a declared helper that never observes anything —
// the same interprocedural resolution, failing.
func spin() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func badSpawnHelper() {
	go spin()
}

// goodWaitGroup ties the goroutine to a waited group.
func goodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			compute()
		}
	}()
	wg.Wait()
}

// goodRange ends when the channel closes: the producer owns the bound.
func goodRange(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// goodDefault can always make progress.
func goodDefault(out chan int) {
	go func() {
		select {
		case out <- compute():
		default:
		}
	}()
}

func compute() int { return 42 }
