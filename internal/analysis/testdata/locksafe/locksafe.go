// Package locksafe is the lock-hygiene fixture: blocking work under a
// mutex in every flagged shape, plus the tolerated patterns.
package locksafe

import (
	"context"
	"os"
	"sync"
	"time"
)

// store matches the structural stream.Store surface, so its methods
// count as journal I/O.
type store struct{}

func (store) Create(id string, t time.Time) error { return nil }
func (store) Append(id string, b []byte) error    { return nil }
func (store) State(id string) error               { return nil }
func (store) Close() error                        { return nil }

type manager struct {
	mu    sync.Mutex
	st    store
	f     *os.File
	ch    chan int
	onMsg func(int)
}

// SendUnderLock sends on a channel while holding mu — flagged.
func (m *manager) SendUnderLock(v int) {
	m.mu.Lock()
	m.ch <- v
	m.mu.Unlock()
}

// StoreUnderLock writes the journal while holding mu — flagged.
func (m *manager) StoreUnderLock(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.Append("id", b)
}

// FileUnderLock fsyncs while holding mu — flagged.
func (m *manager) FileUnderLock() error {
	m.mu.Lock()
	err := m.f.Sync()
	m.mu.Unlock()
	return err
}

// CallbackUnderLock invokes a subscriber callback while locked —
// flagged: the callback's cost and blocking behavior are the caller's.
func (m *manager) CallbackUnderLock(v int) {
	m.mu.Lock()
	m.onMsg(v)
	m.mu.Unlock()
}

// HelperUnderLock reaches the journal through a same-package helper —
// flagged by the transitive pass.
func (m *manager) HelperUnderLock(b []byte) {
	m.mu.Lock()
	m.persist(b)
	m.mu.Unlock()
}

func (m *manager) persist(b []byte) {
	if err := m.st.Append("id", b); err != nil {
		return
	}
}

// AfterUnlock does its I/O after releasing — fine.
func (m *manager) AfterUnlock(b []byte) error {
	m.mu.Lock()
	m.mu.Unlock()
	return m.st.Append("id", b)
}

// SpawnUnderLock starts a goroutine while locked — fine: the goroutine
// body runs without the caller's lock.
func (m *manager) SpawnUnderLock(v int) {
	m.mu.Lock()
	go func() { m.ch <- v }()
	m.mu.Unlock()
}

type job struct {
	mu     sync.Mutex
	cancel context.CancelFunc
}

// Cancel signals cancellation under the lock — fine: CancelFunc is
// non-blocking by contract.
func (j *job) Cancel() {
	j.mu.Lock()
	j.cancel()
	j.mu.Unlock()
}

// Allowed documents a deliberate under-lock fsync (the dedicated
// I/O-lock pattern the journal uses).
func (m *manager) Allowed() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:allow locksafe fixture demonstrates a dedicated I/O lock
	return m.f.Sync()
}
