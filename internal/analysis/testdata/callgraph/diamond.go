// Package callgraph is the unit-test fixture for the module call graph:
// a diamond (A calls B and C; B and C call D) plus a function literal
// spawn, so edge resolution, caller back-edges, literal separation, and
// summary propagation are all exercised on a known shape.
package callgraph

import "context"

type app struct {
	stop chan struct{}
}

func (a *app) A(ctx context.Context) {
	a.B(ctx)
	a.C(ctx)
}

func (a *app) B(ctx context.Context) {
	a.D(ctx)
}

func (a *app) C(ctx context.Context) {
	a.D(ctx)
}

// D observes cancellation: the fact the fixpoint must propagate to B, C
// and A.
func (a *app) D(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-a.stop:
	}
}

// E calls D only from inside a function literal: the edge belongs to
// LitCallees, not Callees, and D's summary must NOT leak into E's.
func (a *app) E(ctx context.Context) {
	go func() {
		a.D(ctx)
	}()
}

// F is pure computation: no edges in, until G below, none out to the
// diamond.
func (a *app) F() int {
	return 1
}

func (a *app) G() int {
	return a.F() + a.F() // deduplicated: one edge G -> F
}
