// Package sim is the determinism fixture: a stand-in substrate package
// (its synthetic import path ends in internal/sim) exercising every
// flagged and every tolerated clock/randomness spelling.
package sim

import (
	"math/rand"
	"time"
)

// Sample draws from the process-global generator — flagged: the global
// stream is seeded once per process and shared across goroutines.
func Sample() int {
	return rand.Intn(6)
}

// Stamp reads the wall clock — flagged.
func Stamp() time.Time {
	return time.Now()
}

// Elapsed measures against the wall clock — flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Roll draws floats from the global generator — flagged.
func Roll() float64 {
	return rand.Float64()
}

// Seeded builds an explicitly seeded generator — fine.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derived draws from a seeded instance — fine: methods on generator
// values are never flagged, only package-level functions.
func Derived(r *rand.Rand) int {
	return r.Intn(6)
}

// Wrapped hides the source behind a parameter — flagged: only a direct
// rand.NewSource construction proves the seed is explicit.
func Wrapped(src rand.Source) *rand.Rand {
	return rand.New(src)
}

// Allowed documents its one wall-clock read, so it is suppressed.
func Allowed() time.Time {
	//lint:allow determinism fixture demonstrates a documented exception
	return time.Now()
}

// Undocumented carries an allow directive without a reason: the
// directive itself is reported and the finding still stands.
func Undocumented() time.Time {
	//lint:allow determinism
	return time.Now()
}
