package lb

import (
	"testing"
)

func TestRuntimeInitialPlacementBlind(t *testing.T) {
	r := NewRuntime(ones(8), GreedyRefineLB{})
	caps := []float64{1, 1, 0.5, 1}
	tm, err := r.Step(caps)
	if err != nil {
		t.Fatal(err)
	}
	// Blind initial placement: 2 objects per PE; slow PE gates at 2/0.5.
	if tm != 4 {
		t.Errorf("initial iteration time = %v, want 4", tm)
	}
}

func TestRuntimeRebalancesAfterPeriod(t *testing.T) {
	r := NewRuntime(ones(8), GreedyRefineLB{})
	r.RebalancePeriod = 3
	caps := []float64{1, 1, 0.5, 1}
	var times []float64
	for i := 0; i < 8; i++ {
		tm, err := r.Step(caps)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, tm)
	}
	// Before rebalance: blind 4.0; after the first rebalance (iteration
	// 3) the greedy assignment takes over and improves.
	if times[0] != 4 || times[2] != 4 {
		t.Errorf("pre-rebalance times = %v", times[:3])
	}
	if times[3] >= times[0] {
		t.Errorf("rebalance did not help: %v", times)
	}
	if r.Iterations() != 8 || r.TotalTime() <= 0 {
		t.Error("bookkeeping wrong")
	}
}

func TestRuntimeReactsToCapacityChange(t *testing.T) {
	r := NewRuntime(ones(16), GreedyRefineLB{})
	r.RebalancePeriod = 2
	healthy := ones(4)
	// Warm up balanced.
	if _, err := r.RunFor(4, healthy); err != nil {
		t.Fatal(err)
	}
	// Anomaly starts: PE0 halves. First iterations suffer, then the
	// balancer adapts using the measured (degraded) capacity.
	degraded := []float64{0.5, 1, 1, 1}
	first, err := r.Step(degraded)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 6; i++ {
		if last, err = r.Step(degraded); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("runtime did not adapt: first %v, settled %v", first, last)
	}
}

func TestRuntimeMeasurementNoiseDeterministic(t *testing.T) {
	run := func() float64 {
		r := NewRuntime(ones(12), GreedyRefineLB{})
		r.MeasurementNoise = 0.2
		r.Seed = 9
		mean, err := r.RunFor(20, []float64{1, 0.6, 1})
		if err != nil {
			t.Fatal(err)
		}
		return mean
	}
	if run() != run() {
		t.Error("noisy runtime not deterministic under a fixed seed")
	}
}

func TestRuntimeValidation(t *testing.T) {
	r := NewRuntime(ones(4), LBObjOnly{})
	if _, err := r.Step(nil); err == nil {
		t.Error("no PEs should error")
	}
	if _, err := r.RunFor(0, ones(2)); err == nil {
		t.Error("zero iterations should error")
	}
}

func TestRuntimeBlindNeverRebalancesUsefully(t *testing.T) {
	// LBObjOnly under the runtime keeps the same iteration time no
	// matter how often it rebalances — it ignores the measurements.
	r := NewRuntime(ones(8), LBObjOnly{})
	r.RebalancePeriod = 1
	caps := []float64{1, 0.5}
	first, err := r.Step(caps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tm, err := r.Step(caps)
		if err != nil {
			t.Fatal(err)
		}
		if tm != first {
			t.Errorf("blind balancer changed iteration time: %v vs %v", tm, first)
		}
	}
}
