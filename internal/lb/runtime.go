package lb

import (
	"fmt"

	"hpas/internal/xrand"
)

// Runtime simulates a Charm++-style object runtime: a set of migratable
// objects executes BSP iterations on PEs whose capacities may change over
// time (e.g. because an anomaly starts); every RebalancePeriod iterations
// the balancer reassigns objects using *measured* capacities — the
// wall-clock observations of the previous period, optionally noisy and
// stale, exactly the information a real runtime load balancer has.
type Runtime struct {
	// Objects are the per-iteration object loads (seconds at capacity 1).
	Objects []float64
	// Balancer reassigns objects at each rebalance point.
	Balancer Balancer
	// RebalancePeriod is the number of iterations between load
	// balancing calls (default 10).
	RebalancePeriod int
	// MeasurementNoise perturbs measured capacities multiplicatively
	// (e.g. 0.05 for ±5%); 0 disables noise.
	MeasurementNoise float64
	// Seed drives the measurement noise.
	Seed uint64

	assignment []int
	measured   []float64 // capacities observed during the last period
	iter       int
	totalTime  float64
	rng        *xrand.RNG
}

// NewRuntime returns a runtime with the objects dealt round-robin (the
// initial placement a Charm++ program starts from).
func NewRuntime(objects []float64, balancer Balancer) *Runtime {
	return &Runtime{
		Objects:         objects,
		Balancer:        balancer,
		RebalancePeriod: 10,
	}
}

// Step executes one iteration against the given true PE capacities and
// returns the iteration time. Rebalancing happens automatically using
// capacities as measured during the previous period.
func (r *Runtime) Step(capacities []float64) (float64, error) {
	if len(capacities) == 0 {
		return 0, fmt.Errorf("lb: no PEs")
	}
	if r.rng == nil {
		r.rng = xrand.New(r.Seed + 0x10ad)
	}
	if r.assignment == nil || len(r.measured) != len(capacities) {
		// Initial blind placement.
		a, err := LBObjOnly{}.Assign(r.Objects, ones(len(capacities)))
		if err != nil {
			return 0, err
		}
		r.assignment = a
		r.measured = append([]float64(nil), capacities...)
	}

	period := r.RebalancePeriod
	if period <= 0 {
		period = 10
	}
	if r.iter > 0 && r.iter%period == 0 {
		obs := make([]float64, len(r.measured))
		for i, c := range r.measured {
			v := c
			if r.MeasurementNoise > 0 {
				v *= r.rng.Jitter(r.MeasurementNoise)
			}
			if v <= 0 {
				v = 0.01
			}
			if v > 1 {
				v = 1
			}
			obs[i] = v
		}
		a, err := r.Balancer.Assign(r.Objects, obs)
		if err != nil {
			return 0, err
		}
		r.assignment = a
	}

	t := IterTime(r.Objects, r.assignment, capacities)
	// What this period's measurements will report next time.
	copy(r.measured, capacities)
	r.iter++
	r.totalTime += t
	return t, nil
}

// RunFor executes n iterations against fixed capacities and returns the
// mean iteration time.
func (r *Runtime) RunFor(n int, capacities []float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("lb: non-positive iteration count")
	}
	var sum float64
	for i := 0; i < n; i++ {
		t, err := r.Step(capacities)
		if err != nil {
			return 0, err
		}
		sum += t
	}
	return sum / float64(n), nil
}

// Iterations returns the number of executed iterations.
func (r *Runtime) Iterations() int { return r.iter }

// TotalTime returns the summed iteration time so far.
func (r *Runtime) TotalTime() float64 { return r.totalTime }

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
