package lb

import (
	"math"
	"testing"
	"testing/quick"
)

func uniformObjects(n int, load float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = load
	}
	return out
}

func TestValidation(t *testing.T) {
	for _, b := range []Balancer{LBObjOnly{}, GreedyRefineLB{}} {
		if _, err := b.Assign(ones(4), nil); err == nil {
			t.Errorf("%s: no PEs not caught", b.Name())
		}
		if _, err := b.Assign(ones(4), []float64{1, 2}); err == nil {
			t.Errorf("%s: capacity > 1 not caught", b.Name())
		}
		if _, err := b.Assign([]float64{-1}, []float64{1}); err == nil {
			t.Errorf("%s: negative load not caught", b.Name())
		}
	}
}

func TestLBObjOnlyDealsEvenly(t *testing.T) {
	a, err := LBObjOnly{}.Assign(ones(8), []float64{1, 1, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, pe := range a {
		counts[pe]++
	}
	for pe, c := range counts {
		if c != 2 {
			t.Errorf("PE %d got %d objects", pe, c)
		}
	}
}

func TestGreedyAvoidsSlowPE(t *testing.T) {
	// One PE at half capacity: greedy should give it about half the
	// objects of a full PE.
	caps := []float64{1, 1, 1, 0.5}
	objs := ones(14)
	a, err := GreedyRefineLB{}.Assign(objs, caps)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, pe := range a {
		counts[pe]++
	}
	if counts[3] >= counts[0] {
		t.Errorf("slow PE got %d vs fast %d", counts[3], counts[0])
	}
	greedy := IterTime(objs, a, caps)
	blind, _ := LBObjOnly{}.Assign(objs, caps)
	if IterTime(objs, blind, caps) <= greedy {
		t.Error("greedy should beat blind dealing on heterogeneous PEs")
	}
}

func TestEqualCapacitiesEquivalent(t *testing.T) {
	// With uniform objects and PEs, both balancers achieve the same
	// iteration time.
	objs := ones(32)
	caps := []float64{1, 1, 1, 1}
	a1, _ := LBObjOnly{}.Assign(objs, caps)
	a2, _ := GreedyRefineLB{}.Assign(objs, caps)
	if IterTime(objs, a1, caps) != IterTime(objs, a2, caps) {
		t.Error("balancers should tie on homogeneous PEs")
	}
}

func TestIterTime(t *testing.T) {
	objs := []float64{1, 1, 2}
	caps := []float64{1, 0.5}
	// obj0,obj1 -> PE0 (load 2/1=2); obj2 -> PE1 (2/0.5=4).
	if got := IterTime(objs, []int{0, 0, 1}, caps); got != 4 {
		t.Errorf("IterTime = %v, want 4", got)
	}
}

func TestCapacityQuantum(t *testing.T) {
	g := GreedyRefineLB{CapacityQuantum: 0.25}
	a, err := g.Assign(ones(8), []float64{1, 0.9, 0.6, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 {
		t.Fatal("bad assignment length")
	}
	// Quantization must never produce a zero capacity.
	b, err := g.Assign(ones(4), []float64{0.01, 1})
	if err != nil {
		t.Fatalf("quantized tiny capacity: %v", err)
	}
	_ = b
}

func TestCapacitiesUnderCPUOccupy(t *testing.T) {
	caps := CapacitiesUnderCPUOccupy(4, 0)
	for _, c := range caps {
		if c != 1 {
			t.Error("no anomaly should leave full capacity")
		}
	}
	caps = CapacitiesUnderCPUOccupy(4, 150) // 1.5 CPUs consumed
	if caps[0] != 0.5 {
		t.Errorf("fully occupied PE cap = %v, want 0.5", caps[0])
	}
	if caps[1] != 0.75 {
		t.Errorf("half occupied PE cap = %v, want 0.75", caps[1])
	}
	if caps[2] != 1 || caps[3] != 1 {
		t.Error("untouched PEs should stay at 1")
	}
	caps = CapacitiesUnderCPUOccupy(2, 200)
	if caps[0] != 0.5 || caps[1] != 0.5 {
		t.Error("saturated node caps wrong")
	}
}

func TestFig13Shape(t *testing.T) {
	// Sweep cpuoccupy intensity on 32 PEs with 128 uniform objects:
	// the balancers tie at 0% and at full saturation, and greedy wins
	// in between (the paper's Figure 13).
	objs := uniformObjects(128, 0.0075)
	iter := func(b Balancer, util float64) float64 {
		caps := CapacitiesUnderCPUOccupy(32, util)
		a, err := b.Assign(objs, caps)
		if err != nil {
			t.Fatal(err)
		}
		return IterTime(objs, a, caps)
	}
	if math.Abs(iter(LBObjOnly{}, 0)-iter(GreedyRefineLB{}, 0)) > 1e-12 {
		t.Error("balancers should tie with no anomaly")
	}
	midBlind := iter(LBObjOnly{}, 800)
	midGreedy := iter(GreedyRefineLB{}, 800)
	if midGreedy >= midBlind {
		t.Errorf("greedy (%v) should beat blind (%v) at 8 occupied CPUs", midGreedy, midBlind)
	}
	satBlind := iter(LBObjOnly{}, 3200)
	satGreedy := iter(GreedyRefineLB{}, 3200)
	if satGreedy > satBlind+1e-9 {
		t.Error("greedy should not lose at saturation")
	}
	if satBlind/iter(LBObjOnly{}, 0) < 1.5 {
		t.Error("saturation should roughly double iteration time")
	}
}

// Property: assignments are always valid and greedy is never worse than
// blind dealing for uniform objects.
func TestGreedyDominatesProperty(t *testing.T) {
	f := func(capsRaw []uint8, nObjRaw uint8) bool {
		if len(capsRaw) == 0 {
			return true
		}
		if len(capsRaw) > 16 {
			capsRaw = capsRaw[:16]
		}
		caps := make([]float64, len(capsRaw))
		for i, c := range capsRaw {
			caps[i] = 0.1 + 0.9*float64(c)/255
		}
		objs := ones(1 + int(nObjRaw)%64)
		blind, err1 := LBObjOnly{}.Assign(objs, caps)
		greedy, err2 := GreedyRefineLB{}.Assign(objs, caps)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, pe := range greedy {
			if pe < 0 || pe >= len(caps) {
				return false
			}
		}
		return IterTime(objs, greedy, caps) <= IterTime(objs, blind, caps)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
