// Package lb implements the Charm++-style object load balancing of the
// paper's application-resilience use case (Section 5.3): a set of
// migratable objects (chares) is distributed over processing elements
// (PEs), and the iteration time is gated by the most loaded PE relative
// to its available capacity.
//
// Two balancers are compared, mirroring Figure 13:
//
//   - LBObjOnly uses only object properties: objects are dealt evenly
//     over PEs regardless of how much CPU each PE actually has.
//   - GreedyRefineLB measures PE capacity first and greedily assigns the
//     heaviest remaining object to the PE with the lowest projected
//     completion time.
package lb

import (
	"fmt"
	"sort"
)

// Balancer assigns object loads to PEs.
type Balancer interface {
	// Name identifies the balancer in reports.
	Name() string
	// Assign maps each object (by index) to a PE given the per-object
	// loads and the per-PE capacities (fractions of a full CPU, in
	// (0,1]). It returns the assignment slice.
	Assign(objects []float64, capacities []float64) ([]int, error)
}

// LBObjOnly deals objects round-robin over PEs, blind to capacity.
type LBObjOnly struct{}

// Name implements Balancer.
func (LBObjOnly) Name() string { return "LBObjOnly" }

// Assign implements Balancer.
func (LBObjOnly) Assign(objects []float64, capacities []float64) ([]int, error) {
	if err := validate(objects, capacities); err != nil {
		return nil, err
	}
	out := make([]int, len(objects))
	for i := range objects {
		out[i] = i % len(capacities)
	}
	return out, nil
}

// GreedyRefineLB assigns the heaviest object first, each to the PE whose
// projected finish time (assigned load / measured capacity) is lowest —
// the greedy core of Charm++'s GreedyRefineLB.
type GreedyRefineLB struct {
	// CapacityQuantum optionally quantizes measured capacities to
	// multiples of this value (Charm++ measures capacity from coarse
	// wall-clock samples). 0 disables quantization.
	CapacityQuantum float64
}

// Name implements Balancer.
func (GreedyRefineLB) Name() string { return "GreedyRefineLB" }

// Assign implements Balancer.
func (g GreedyRefineLB) Assign(objects []float64, capacities []float64) ([]int, error) {
	if err := validate(objects, capacities); err != nil {
		return nil, err
	}
	caps := append([]float64(nil), capacities...)
	if g.CapacityQuantum > 0 {
		for i, c := range caps {
			q := float64(int(c/g.CapacityQuantum+0.5)) * g.CapacityQuantum
			if q < g.CapacityQuantum {
				q = g.CapacityQuantum
			}
			caps[i] = q
		}
	}
	order := make([]int, len(objects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if objects[order[a]] != objects[order[b]] {
			return objects[order[a]] > objects[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]float64, len(caps))
	out := make([]int, len(objects))
	for _, obj := range order {
		best, bestT := 0, (load[0]+objects[obj])/caps[0]
		for pe := 1; pe < len(caps); pe++ {
			if t := (load[pe] + objects[obj]) / caps[pe]; t < bestT {
				best, bestT = pe, t
			}
		}
		out[obj] = best
		load[best] += objects[obj]
	}
	return out, nil
}

func validate(objects, capacities []float64) error {
	if len(capacities) == 0 {
		return fmt.Errorf("lb: no PEs")
	}
	for i, c := range capacities {
		if c <= 0 || c > 1 {
			return fmt.Errorf("lb: capacity[%d] = %v out of (0,1]", i, c)
		}
	}
	for i, o := range objects {
		if o < 0 {
			return fmt.Errorf("lb: object[%d] has negative load %v", i, o)
		}
	}
	return nil
}

// IterTime returns the BSP iteration time of an assignment: the maximum
// over PEs of assigned load divided by true capacity.
func IterTime(objects []float64, assignment []int, capacities []float64) float64 {
	load := make([]float64, len(capacities))
	for obj, pe := range assignment {
		load[pe] += objects[obj]
	}
	var worst float64
	for pe, l := range load {
		if t := l / capacities[pe]; t > worst {
			worst = t
		}
	}
	return worst
}

// CapacitiesUnderCPUOccupy models PE capacities on a node where
// cpuoccupy consumes util percent of one CPU in total (0..100*pes): the
// anomaly fully occupies floor(util/100) PEs and partially occupies one
// more. A fully occupied PE still runs its worker at 50% (fair-share
// between the worker and the 100%-duty anomaly thread); a partially
// occupied PE loses half of the anomaly's duty fraction.
func CapacitiesUnderCPUOccupy(pes int, util float64) []float64 {
	caps := make([]float64, pes)
	remaining := util / 100
	for pe := range caps {
		occ := 0.0
		if remaining >= 1 {
			occ = 1
			remaining--
		} else if remaining > 0 {
			occ = remaining
			remaining = 0
		}
		caps[pe] = 1 - occ/2
	}
	return caps
}
