package experiments

import (
	"fmt"

	"hpas/internal/core"
	"hpas/internal/ml"
	"hpas/internal/report"
)

// ClassifierNames are the three algorithms compared in Figure 9.
func ClassifierNames() []string { return []string{"DecisionTree", "AdaBoost", "RandomForest"} }

func makeClassifier(name string) func() ml.Classifier {
	switch name {
	case "DecisionTree":
		return func() ml.Classifier { return ml.NewTree(ml.TreeOptions{MaxDepth: 12}) }
	case "AdaBoost":
		return func() ml.Classifier { return ml.NewAdaBoost(ml.AdaBoostOptions{Rounds: 40, MaxDepth: 3, Seed: 7}) }
	default:
		return func() ml.Classifier { return ml.NewForest(ml.ForestOptions{Trees: 50, MaxDepth: 14, Seed: 7}) }
	}
}

// Fig9Result holds the diagnosis F1 scores of the paper's Figure 9 and
// the confusion matrices behind Figure 10: anomaly classification from
// monitoring features via 3-fold stratified cross-validation.
type Fig9Result struct {
	Classes []string
	// F1[classifier][class] in Classes order.
	F1 map[string][]float64
	// Confusions per classifier ("RandomForest" is the paper's Fig 10).
	Confusions map[string]*ml.Confusion
	// Dataset statistics.
	Samples, Features int
	// TopFeatures are the most important feature names of a random
	// forest trained on the full dataset — the "which metrics matter"
	// view of the paper's framework.
	TopFeatures []string
}

// Fig9 generates the labelled dataset and cross-validates all three
// classifiers. quick shrinks the dataset (fewer apps and reps, shorter
// windows).
func Fig9(quick bool) (*Fig9Result, error) {
	cfg := core.DatasetConfig{Reps: 5, Window: 60, Seed: 99, Noise: 0.02}
	if quick {
		cfg.Apps = []string{"CoMD", "miniGhost"}
		cfg.Reps = 2
		cfg.Window = 30
		cfg.Warmup = 6
	}
	ds, err := core.GenerateDataset(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Classes:    ds.Classes,
		F1:         make(map[string][]float64),
		Confusions: make(map[string]*ml.Confusion),
		Samples:    ds.NumSamples(),
		Features:   ds.NumFeatures(),
	}
	for _, name := range ClassifierNames() {
		cv, err := ml.CrossValidate(makeClassifier(name), ds, 3, 42)
		if err != nil {
			return nil, err
		}
		res.F1[name] = cv.Confusion.F1Scores()
		res.Confusions[name] = cv.Confusion
	}
	// Which metrics carry the diagnosis: importance of a forest trained
	// on the whole dataset.
	full := ml.NewForest(ml.ForestOptions{Trees: 50, MaxDepth: 14, Seed: 7})
	if err := full.Fit(ds, nil); err != nil {
		return nil, err
	}
	for _, idx := range full.TopFeatures(8) {
		res.TopFeatures = append(res.TopFeatures, ds.FeatureNames[idx])
	}
	return res, nil
}

// OverallF1 returns the macro F1 of the named classifier.
func (r *Fig9Result) OverallF1(name string) float64 {
	c := r.Confusions[name]
	if c == nil {
		return 0
	}
	return c.MacroF1()
}

// Render implements Result.
func (r *Fig9Result) Render() string {
	t := report.Table{
		Title: fmt.Sprintf(
			"Figure 9: per-class F1 of anomaly diagnosis (3-fold CV, %d samples x %d features)",
			r.Samples, r.Features),
		Headers: append([]string{"classifier"}, r.Classes...),
	}
	for _, name := range ClassifierNames() {
		cells := []string{name}
		for _, f1 := range r.F1[name] {
			cells = append(cells, fmt.Sprintf("%.2f", f1))
		}
		t.AddRow(cells...)
	}
	out := t.String()
	out += fmt.Sprintf("\nOverall macro F1 (RandomForest): %.2f\n", r.OverallF1("RandomForest"))
	out += "Most informative features: "
	for i, f := range r.TopFeatures {
		if i > 0 {
			out += ", "
		}
		out += f
	}
	out += "\n"
	return out
}

// Fig10Result renders the random-forest confusion matrix (Figure 10).
type Fig10Result struct {
	Confusion *ml.Confusion
}

// Fig10 reuses the Fig9 pipeline and extracts the random-forest matrix.
func Fig10(quick bool) (*Fig10Result, error) {
	f9, err := Fig9(quick)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Confusion: f9.Confusions["RandomForest"]}, nil
}

// Render implements Result.
func (r *Fig10Result) Render() string {
	rows := make([][]float64, len(r.Confusion.Classes))
	for t := range rows {
		rows[t] = r.Confusion.Row(t)
	}
	return report.Matrix(
		"Figure 10: RandomForest confusion matrix (rows = true label, row-normalized)",
		r.Confusion.Classes, r.Confusion.Classes, rows)
}
