package experiments

import "hpas/internal/variability"

// MotivationResult demonstrates the phenomenon motivating the paper
// (Section 2): the same application with the same input shows large
// run-to-run performance variation when anomalies come and go on the
// system.
type MotivationResult struct {
	*variability.Result
}

// Motivation measures run-to-run variability of miniGhost under
// randomly occurring anomalies.
func Motivation(quick bool) (*MotivationResult, error) {
	cfg := variability.Config{
		App:         "miniGhost",
		Reps:        12,
		AnomalyProb: 0.5,
		Seed:        18,
	}
	if quick {
		cfg.Reps = 6
		cfg.Iterations = 3
	}
	res, err := variability.Measure(cfg)
	if err != nil {
		return nil, err
	}
	return &MotivationResult{Result: res}, nil
}

// Render implements Result.
func (r *MotivationResult) Render() string { return r.Result.Render() }
