package experiments

import (
	"fmt"

	"hpas/internal/cluster"
	"hpas/internal/core"
	"hpas/internal/monitor"
	"hpas/internal/report"
	"hpas/internal/stats"
)

// Fig2Result holds the cpuoccupy intensity-vs-utilization sweep of the
// paper's Figure 2: the anomaly must consume exactly the requested
// percentage of one CPU (plus OS noise).
type Fig2Result struct {
	Intensities  []float64 // requested, percent of one CPU
	Utilizations []float64 // measured user+sys, percent of one CPU
}

// Fig2 runs the sweep. quick shrinks the per-point observation window.
func Fig2(quick bool) (*Fig2Result, error) {
	window := 30.0
	if quick {
		window = 8
	}
	res := &Fig2Result{}
	for u := 10.0; u <= 100; u += 10 {
		run, err := core.Run(core.RunConfig{
			Cluster:      cluster.Voltrino(1),
			Anomalies:    []core.Spec{{Name: "cpuoccupy", Node: 0, CPU: 0, Intensity: u}},
			FixedSeconds: window,
			Seed:         uint64(u),
		})
		if err != nil {
			return nil, err
		}
		set := run.Metrics[0]
		user := set.Get(monitor.MetricUser).Values
		sys := set.Get(monitor.MetricSys).Values
		total := make([]float64, len(user))
		for i := range user {
			total[i] = user[i] + sys[i]
		}
		res.Intensities = append(res.Intensities, u)
		res.Utilizations = append(res.Utilizations, stats.Mean(total))
	}
	return res, nil
}

// MaxAbsError returns the largest |measured - requested| over the sweep.
func (r *Fig2Result) MaxAbsError() float64 {
	var worst float64
	for i := range r.Intensities {
		d := r.Utilizations[i] - r.Intensities[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Render implements Result.
func (r *Fig2Result) Render() string {
	c := report.BarChart{
		Title: "Figure 2: cpuoccupy intensity vs. node CPU utilization (Voltrino)",
		Unit:  "% of one CPU",
	}
	for i := range r.Intensities {
		c.Add(fmt.Sprintf("intensity %3.0f%%", r.Intensities[i]), r.Utilizations[i])
	}
	return c.String()
}
