package experiments

import (
	"fmt"

	"hpas/internal/lb"
	"hpas/internal/report"
)

// Fig13Result holds the load-balancer comparison of the paper's
// Figure 13: a Charm++-style 3D stencil with 128 chares on 32 PEs,
// swept over cpuoccupy intensity from 0 to 3200% (all 32 CPUs).
// LBObjOnly ignores PE capacity and is gated by the slowest PE;
// GreedyRefineLB measures capacity and stays near-optimal until the
// anomaly saturates the node, where the two meet again.
type Fig13Result struct {
	Utilizations []float64 // cpuoccupy intensity, % of one CPU
	ObjOnly      []float64 // time per iteration, s
	Greedy       []float64
}

const (
	fig13PEs     = 32
	fig13Objects = 128
	fig13ObjLoad = 0.0075 // seconds per object per iteration
)

// Fig13 runs the sweep.
func Fig13(quick bool) (*Fig13Result, error) {
	step := 100.0
	if quick {
		step = 400
	}
	objs := make([]float64, fig13Objects)
	for i := range objs {
		objs[i] = fig13ObjLoad
	}
	blind := lb.LBObjOnly{}
	greedy := lb.GreedyRefineLB{CapacityQuantum: 0.25}
	res := &Fig13Result{}
	for util := 0.0; util <= 3200; util += step {
		caps := lb.CapacitiesUnderCPUOccupy(fig13PEs, util)
		aBlind, err := blind.Assign(objs, caps)
		if err != nil {
			return nil, err
		}
		aGreedy, err := greedy.Assign(objs, caps)
		if err != nil {
			return nil, err
		}
		res.Utilizations = append(res.Utilizations, util)
		res.ObjOnly = append(res.ObjOnly, lb.IterTime(objs, aBlind, caps))
		res.Greedy = append(res.Greedy, lb.IterTime(objs, aGreedy, caps))
	}
	return res, nil
}

// At returns (objOnly, greedy) iteration times at the given utilization
// (-1,-1 when absent).
func (r *Fig13Result) At(util float64) (float64, float64) {
	for i, u := range r.Utilizations {
		if u == util {
			return r.ObjOnly[i], r.Greedy[i]
		}
	}
	return -1, -1
}

// Render implements Result.
func (r *Fig13Result) Render() string {
	return report.Lines(
		fmt.Sprintf("Figure 13: 3D stencil time/iteration (s) vs. cpuoccupy intensity, %d chares on %d PEs",
			fig13Objects, fig13PEs),
		"util%",
		r.Utilizations,
		map[string][]float64{"LBObjOnly": r.ObjOnly, "GreedyRefineLB": r.Greedy},
		[]string{"LBObjOnly", "GreedyRefineLB"})
}
