package experiments

import (
	"fmt"
	"math"
	"strings"

	"hpas/internal/anomaly"
	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/core"
	"hpas/internal/lb"
	"hpas/internal/ml"
	"hpas/internal/netsim"
	"hpas/internal/report"
	"hpas/internal/sim"
)

// AblationMemBWResult tests the paper's hypothesis for the Figure 10
// confusion: "this could be due to the lack of metrics representing
// memory bandwidth in the monitoring data". The diagnosis pipeline runs
// twice — once with the paper's metric set and once with an uncore
// memory-bandwidth counter added — and compares the CPU-trio F1 scores.
type AblationMemBWResult struct {
	Classes           []string
	F1Without, F1With []float64 // per class, RandomForest
	MacroWithout      float64
	MacroWith         float64
}

// AblationMemBW runs the comparison.
func AblationMemBW(quick bool) (*AblationMemBWResult, error) {
	cfg := core.DatasetConfig{Reps: 3, Window: 60, Seed: 99, Noise: 0.02}
	if quick {
		cfg.Apps = []string{"CoMD", "miniGhost"}
		cfg.Reps = 4
		cfg.Window = 30
		cfg.Warmup = 6
	}
	eval := func(withCounter bool) ([]float64, float64, []string, error) {
		c := cfg
		c.MemBWCounter = withCounter
		ds, err := core.GenerateDataset(c)
		if err != nil {
			return nil, 0, nil, err
		}
		cv, err := ml.CrossValidate(func() ml.Classifier {
			return ml.NewForest(ml.ForestOptions{Trees: 50, MaxDepth: 14, Seed: 7})
		}, ds, 3, 42)
		if err != nil {
			return nil, 0, nil, err
		}
		return cv.Confusion.F1Scores(), cv.Confusion.MacroF1(), ds.Classes, nil
	}
	without, macroWithout, classes, err := eval(false)
	if err != nil {
		return nil, err
	}
	with, macroWith, _, err := eval(true)
	if err != nil {
		return nil, err
	}
	return &AblationMemBWResult{
		Classes:   classes,
		F1Without: without, F1With: with,
		MacroWithout: macroWithout, MacroWith: macroWith,
	}, nil
}

// TrioGain returns the mean F1 improvement over the cpuoccupy/membw/
// cachecopy classes when the counter is added.
func (r *AblationMemBWResult) TrioGain() float64 {
	var gain float64
	n := 0
	for i, c := range r.Classes {
		if c == "cpuoccupy" || c == "membw" || c == "cachecopy" {
			gain += r.F1With[i] - r.F1Without[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return gain / float64(n)
}

// MembwGain returns the F1 improvement of the membw class itself — the
// class whose signature the added counter measures directly.
func (r *AblationMemBWResult) MembwGain() float64 {
	for i, c := range r.Classes {
		if c == "membw" {
			return r.F1With[i] - r.F1Without[i]
		}
	}
	return 0
}

// Render implements Result.
func (r *AblationMemBWResult) Render() string {
	t := report.Table{
		Title:   "Ablation: adding an uncore memory-bandwidth counter to the monitored metrics",
		Headers: append([]string{"metric set"}, r.Classes...),
	}
	row := func(label string, f1s []float64) {
		cells := []string{label}
		for _, v := range f1s {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(cells...)
	}
	row("paper (no membw)", r.F1Without)
	row("with membw ctr", r.F1With)
	out := t.String()
	verdict := "consistent with the paper's explanation of Fig. 10's confusion"
	if r.MembwGain() <= 0.01 && r.TrioGain() <= 0.01 {
		verdict = "inconclusive at this dataset size"
	}
	out += fmt.Sprintf("\nmacro F1 %.2f -> %.2f; membw F1 gain %+.2f; mean CPU-trio gain %+.2f (%s)\n",
		r.MacroWithout, r.MacroWith, r.MembwGain(), r.TrioGain(), verdict)
	return out
}

// AblationRoutingResult isolates the role of adaptive routing in
// Figure 6: the same netoccupy contention with adaptive routing disabled
// (all traffic on the minimal path) collapses OSU bandwidth, confirming
// that Voltrino's redundant links are what bound the anomaly's damage.
type AblationRoutingResult struct {
	Pairs            []int     // anomaly pair counts
	Adaptive, Direct []float64 // OSU GB/s
}

// AblationRouting runs the comparison.
func AblationRouting(quick bool) (*AblationRoutingResult, error) {
	window := 4.0
	if quick {
		window = 1.5
	}
	measure := func(adaptive bool, pairs int) float64 {
		cfg := netsim.Voltrino()
		cfg.Adaptive = adaptive
		c := cluster.New(cluster.Config{
			Machine: cluster.Voltrino(8).Machine,
			Net:     cfg,
			FS:      cluster.Voltrino(8).FS,
			Nodes:   8,
			Seed:    1,
		})
		osu := apps.NewOSU(0, 4, 8*1024*1024)
		c.Place(osu, 0, 0)
		for p := 0; p < pairs; p++ {
			c.Place(anomaly.NewNetOccupy(1+p, 5+p), 1+p, 0)
		}
		eng := sim.New(sim.DefaultDT)
		eng.Add(c)
		eng.RunFor(window)
		return osu.Bandwidth() / 1e9
	}
	res := &AblationRoutingResult{Pairs: []int{0, 1, 2, 3}}
	for _, p := range res.Pairs {
		res.Adaptive = append(res.Adaptive, measure(true, p))
		res.Direct = append(res.Direct, measure(false, p))
	}
	return res, nil
}

// Render implements Result.
func (r *AblationRoutingResult) Render() string {
	xs := make([]float64, len(r.Pairs))
	for i, p := range r.Pairs {
		xs[i] = float64(p)
	}
	return report.Lines(
		"Ablation: OSU bandwidth (GB/s) with vs without adaptive routing under netoccupy",
		"pairs", xs,
		map[string][]float64{"adaptive": r.Adaptive, "minimal-only": r.Direct},
		[]string{"adaptive", "minimal-only"})
}

// AblationRebalanceResult sweeps the load-balancing period of the
// Charm-like runtime: a cpuoccupy anomaly arrives mid-run, and shorter
// rebalance periods let GreedyRefineLB adapt faster at the cost of more
// balancing calls — the central design trade-off of Section 5.3.
type AblationRebalanceResult struct {
	Periods []int
	// MeanIter[period] is the mean iteration time over the anomalous
	// half of the run.
	MeanIter []float64
	Blind    float64 // LBObjOnly reference (period-independent)
}

// AblationRebalance runs the sweep.
func AblationRebalance(quick bool) (*AblationRebalanceResult, error) {
	iters := 200
	if quick {
		iters = 60
	}
	objs := make([]float64, 128)
	for i := range objs {
		objs[i] = 0.0075
	}
	healthy := lb.CapacitiesUnderCPUOccupy(32, 0)
	degraded := lb.CapacitiesUnderCPUOccupy(32, 800)
	run := func(b lb.Balancer, period int) (float64, error) {
		rt := lb.NewRuntime(objs, b)
		rt.RebalancePeriod = period
		if _, err := rt.RunFor(iters/2, healthy); err != nil {
			return 0, err
		}
		return rt.RunFor(iters/2, degraded)
	}
	res := &AblationRebalanceResult{Periods: []int{1, 5, 10, 25, 50}}
	for _, p := range res.Periods {
		m, err := run(lb.GreedyRefineLB{}, p)
		if err != nil {
			return nil, err
		}
		res.MeanIter = append(res.MeanIter, m)
	}
	blind, err := run(lb.LBObjOnly{}, 10)
	if err != nil {
		return nil, err
	}
	res.Blind = blind
	return res, nil
}

// Monotone reports whether shorter periods are (weakly) better.
func (r *AblationRebalanceResult) Monotone() bool {
	for i := 1; i < len(r.MeanIter); i++ {
		if r.MeanIter[i] < r.MeanIter[i-1]-1e-9 {
			return false
		}
	}
	return true
}

// Render implements Result.
func (r *AblationRebalanceResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: GreedyRefineLB rebalance period vs mean iteration time under a mid-run anomaly\n")
	for i, p := range r.Periods {
		bar := strings.Repeat("#", int(math.Round(r.MeanIter[i]/r.Blind*40)))
		fmt.Fprintf(&b, "period %3d |%-42s %.4f s\n", p, bar, r.MeanIter[i])
	}
	fmt.Fprintf(&b, "LBObjOnly reference: %.4f s\n", r.Blind)
	return b.String()
}
