package experiments

import (
	"fmt"

	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/core"
	"hpas/internal/report"
)

// Table2Row characterizes one application from clean-run counters.
type Table2Row struct {
	App          string
	IPS          float64 // instructions/s (whole job)
	L2MPKI       float64 // L2 misses per kilo-instruction (whole job)
	NetRate      float64 // halo bytes/s (whole job)
	CPUIntensive bool    // derived from measurements
	MemIntensive bool
	NetIntensive bool
}

// Table2Result reproduces the paper's Table 2: each application's
// intensiveness classes derived from measured IPS, L2 miss rate, and NIC
// traffic, exactly as the paper derives them from
// INST_RETIRED/L2_RQSTS:MISS/AR_NIC counters.
type Table2Result struct {
	Rows []Table2Row
	// Thresholds used for classification.
	IPSThreshold, L2Threshold, NetThreshold float64
}

// Table2 characterizes all eight applications from clean runs.
func Table2(quick bool) (*Table2Result, error) {
	window := 30.0
	if quick {
		window = 10
	}
	res := &Table2Result{
		IPSThreshold: 20e9, // whole-job instructions/s
		L2Threshold:  60,   // job L2 misses per kilo-instruction
		NetThreshold: 2e9,  // whole-job halo bytes/s
	}
	for _, name := range apps.Names() {
		run, err := core.Run(core.RunConfig{
			Cluster:      cluster.Voltrino(16),
			App:          name,
			AppNodes:     []int{0, 4, 8, 12}, // spread over switches
			Iterations:   1 << 20,
			FixedSeconds: window,
			Seed:         2,
		})
		if err != nil {
			return nil, err
		}
		job := run.Job
		row := Table2Row{
			App:     name,
			IPS:     job.Instructions() / window,
			L2MPKI:  job.L2MPKI(),
			NetRate: job.NetBytes() / window,
		}
		row.CPUIntensive = row.IPS >= res.IPSThreshold
		row.MemIntensive = row.L2MPKI >= res.L2Threshold
		row.NetIntensive = row.NetRate >= res.NetThreshold
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Matches reports how many of the 8 apps land in exactly the classes the
// paper's Table 2 assigns.
func (r *Table2Result) Matches() int {
	n := 0
	for _, row := range r.Rows {
		p, ok := apps.ByName(row.App)
		if !ok {
			continue
		}
		if p.CPUIntensive == row.CPUIntensive &&
			p.MemIntensive == row.MemIntensive &&
			p.NetIntensive == row.NetIntensive {
			n++
		}
	}
	return n
}

// Render implements Result.
func (r *Table2Result) Render() string {
	t := report.Table{
		Title:   "Table 2: application characteristics (measured on the simulated Voltrino)",
		Headers: []string{"app", "IPS", "L2 MPKI", "net B/s", "CPU", "Mem", "Net"},
	}
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, row := range r.Rows {
		t.AddRow(row.App,
			fmt.Sprintf("%.3g", row.IPS),
			fmt.Sprintf("%.3g", row.L2MPKI),
			fmt.Sprintf("%.3g", row.NetRate),
			mark(row.CPUIntensive), mark(row.MemIntensive), mark(row.NetIntensive))
	}
	return t.String()
}
