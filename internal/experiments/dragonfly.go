package experiments

import (
	"fmt"

	"hpas/internal/anomaly"
	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/netsim"
	"hpas/internal/report"
	"hpas/internal/sim"
	"hpas/internal/storage"
)

// DragonflyResult extends the paper's Figure 6 to a full-scale dragonfly
// (the topology Voltrino's Aries belongs to at scale): the same
// netoccupy contention is applied to an OSU pair whose traffic crosses a
// group boundary, where the single global link — not the redundant
// electrical level — is the contended resource. The paper's Section 2
// notes that the "location and severity of contention depend on the
// network topology"; this experiment quantifies it.
type DragonflyResult struct {
	Pairs []int
	// IntraGroup[i] is OSU bandwidth (GB/s) with i anomaly pairs when
	// everything stays inside one group.
	IntraGroup []float64
	// InterGroup[i] is the same with traffic crossing groups.
	InterGroup []float64
}

// DragonflyExperiment runs the comparison on a 4-group, 16-switch
// dragonfly with 64 nodes.
func DragonflyExperiment(quick bool) (*DragonflyResult, error) {
	window := 4.0
	if quick {
		window = 1.5
	}
	build := func() *cluster.Cluster {
		return cluster.New(cluster.Config{
			Machine: cluster.Voltrino(8).Machine,
			Net:     netsim.Dragonfly(4, 4, 4),
			FS:      storage.Lustre(),
			Nodes:   64,
			Seed:    1,
		})
	}
	measure := func(crossGroup bool, pairs int) float64 {
		c := build()
		dst := 12 // switch 3, same group
		if crossGroup {
			dst = 16 // switch 4, group 1
		}
		osu := apps.NewOSU(0, dst, 8*1024*1024)
		c.Place(osu, 0, 0)
		for p := 0; p < pairs; p++ {
			// Anomaly sources sit on switches 1..3 of group 0 (never the
			// OSU's source switch). Intra-group pairs stay inside group 0;
			// inter-group pairs cross the same group 0 -> group 1 global
			// link the OSU flow uses.
			src := 4 * (p + 1)
			peer := 13 + p // nodes of switch 3, group 0
			if crossGroup {
				peer = 20 + 4*p // switches 5, 6, 7 of group 1
			}
			c.Place(anomaly.NewNetOccupy(src, peer), src, 0)
		}
		eng := sim.New(sim.DefaultDT)
		eng.Add(c)
		eng.RunFor(window)
		return osu.Bandwidth() / 1e9
	}
	res := &DragonflyResult{Pairs: []int{0, 1, 2, 3}}
	for _, p := range res.Pairs {
		res.IntraGroup = append(res.IntraGroup, measure(false, p))
		res.InterGroup = append(res.InterGroup, measure(true, p))
	}
	return res, nil
}

// Render implements Result.
func (r *DragonflyResult) Render() string {
	xs := make([]float64, len(r.Pairs))
	for i, p := range r.Pairs {
		xs[i] = float64(p)
	}
	out := report.Lines(
		"Extension: netoccupy on a 4-group dragonfly — OSU bandwidth (GB/s) by traffic locality",
		"pairs", xs,
		map[string][]float64{"intra-group": r.IntraGroup, "inter-group": r.InterGroup},
		[]string{"intra-group", "inter-group"})
	out += fmt.Sprintf("\nInter-group traffic funnels through one global link and degrades far more\n" +
		"under the same contention — the topology dependence the paper's Section 2 describes.\n")
	return out
}
