package experiments

import (
	"fmt"
	"strings"

	"hpas/internal/cluster"
	"hpas/internal/core"
	"hpas/internal/monitor"
	"hpas/internal/units"
)

// Fig5Result holds the memory-footprint timelines of the paper's
// Figure 5: memeater ramps quickly to its buffer size and stays flat,
// while memleak grows linearly for its whole window.
type Fig5Result struct {
	Times    []float64 // seconds
	MemLeak  []float64 // node memory used, bytes
	MemEater []float64
}

// Fig5 runs both anomalies for the paper's 500-second window (50 s in
// quick mode, with the leak rate scaled up to keep the same shape).
func Fig5(quick bool) (*Fig5Result, error) {
	window := 500.0
	leakRate := 0.45 // 20 MiB chunks -> ~9 MB/s -> ~4 GiB over 450 s
	eaterRate := 1.0
	if quick {
		window = 50
		leakRate = 4.5
		eaterRate = 10
	}
	run := func(spec core.Spec) ([]float64, []float64, error) {
		r, err := core.Run(core.RunConfig{
			Cluster:      cluster.Voltrino(1),
			Anomalies:    []core.Spec{spec},
			FixedSeconds: window,
			Seed:         5,
		})
		if err != nil {
			return nil, nil, err
		}
		used := r.Metrics[0].Get(monitor.MetricMemUsed)
		times := make([]float64, used.Len())
		for i := range times {
			times[i] = float64(i+1) * used.Period
		}
		return times, used.Values, nil
	}
	leakSpec := core.Spec{Name: "memleak", Node: 0, CPU: 0, Start: 5, End: window * 0.9, Intensity: leakRate}
	eaterSpec := core.Spec{Name: "memeater", Node: 0, CPU: 0, Start: 5, End: window * 0.9,
		Size: units.ByteSize(3.5 * float64(units.GiB)), Intensity: eaterRate}

	times, leak, err := run(leakSpec)
	if err != nil {
		return nil, err
	}
	_, eater, err := run(eaterSpec)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Times: times, MemLeak: leak, MemEater: eater}, nil
}

// Render implements Result.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: memory usage over time, memleak vs. memeater (Voltrino)\n")
	step := len(r.Times) / 20
	if step < 1 {
		step = 1
	}
	b.WriteString(fmt.Sprintf("%8s  %12s  %12s\n", "t(s)", "memleak", "memeater"))
	for i := 0; i < len(r.Times); i += step {
		b.WriteString(fmt.Sprintf("%8.0f  %12s  %12s\n",
			r.Times[i],
			units.ByteSize(r.MemLeak[i]).String(),
			units.ByteSize(r.MemEater[i]).String()))
	}
	return b.String()
}
