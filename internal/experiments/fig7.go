package experiments

import (
	"fmt"

	"hpas/internal/anomaly"
	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/report"
	"hpas/internal/sim"
	"hpas/internal/units"
)

// Fig7Case is one bar group of Figure 7.
type Fig7Case struct {
	Anomaly string  // "none", "iobandwidth", "iometadata"
	WriteBW float64 // bytes/s
	Access  float64 // metadata ops/s
	ReadBW  float64 // bytes/s
}

// Fig7Result holds the IOR-vs-I/O-anomaly experiment of the paper's
// Figure 7, on the Chameleon Cloud NFS appliance: one NFS server, four
// anomaly nodes with 48 instances each, and IOR on the fifth node.
type Fig7Result struct {
	Cases []Fig7Case
}

// Fig7 runs the experiment.
func Fig7(quick bool) (*Fig7Result, error) {
	window := 10.0
	if quick {
		window = 3
	}
	measure := func(anomalyName string, phase apps.IORPhase) (float64, float64, error) {
		c := cluster.New(cluster.ChameleonCloud(5))
		ior := apps.NewIOR(phase)
		c.Place(ior, 4, 0)
		for n := 0; n < 4; n++ {
			switch anomalyName {
			case "iobandwidth":
				c.Place(anomaly.NewIOBandwidth(units.GiB, 48), n, 0)
			case "iometadata":
				c.Place(anomaly.NewIOMetadata(100, 48), n, 0)
			}
		}
		eng := sim.New(sim.DefaultDT)
		eng.Add(c)
		eng.RunFor(window)
		return ior.MeanBW(), ior.MeanOps(), nil
	}
	res := &Fig7Result{}
	for _, a := range []string{"none", "iobandwidth", "iometadata"} {
		var cs Fig7Case
		cs.Anomaly = a
		var err error
		if cs.WriteBW, _, err = measure(a, apps.IORWrite); err != nil {
			return nil, err
		}
		if _, cs.Access, err = measure(a, apps.IORAccess); err != nil {
			return nil, err
		}
		if cs.ReadBW, _, err = measure(a, apps.IORRead); err != nil {
			return nil, err
		}
		res.Cases = append(res.Cases, cs)
	}
	return res, nil
}

// Case returns the named case (nil if absent).
func (r *Fig7Result) Case(name string) *Fig7Case {
	for i := range r.Cases {
		if r.Cases[i].Anomaly == name {
			return &r.Cases[i]
		}
	}
	return nil
}

// Render implements Result.
func (r *Fig7Result) Render() string {
	t := report.Table{
		Title:   "Figure 7: IOR under I/O anomalies (Chameleon Cloud NFS)",
		Headers: []string{"anomaly", "write MB/s", "access ops/s", "read MB/s"},
	}
	for _, c := range r.Cases {
		t.AddRow(c.Anomaly,
			fmt.Sprintf("%.1f", c.WriteBW/1e6),
			fmt.Sprintf("%.0f", c.Access),
			fmt.Sprintf("%.1f", c.ReadBW/1e6))
	}
	return t.String()
}
