package experiments

import (
	"fmt"

	"hpas/internal/anomaly"
	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/report"
	"hpas/internal/sim"
)

// Fig3Case labels one bar of Figure 3.
type Fig3Case struct {
	Machine string  // "voltrino" or "chameleon"
	Target  string  // "none", "L1", "L2", "L3"
	MPKI    float64 // miniGhost L3 misses per kilo-instruction
}

// Fig3Result holds the cachecopy working-set sweep of the paper's
// Figure 3: a single-rank miniGhost shares a physical core (via SMT)
// with cachecopy, and its L3 MPKI rises with the anomaly's working-set
// level; Chameleon Cloud suffers more because its L3 is smaller.
type Fig3Result struct {
	Cases []Fig3Case
}

// Fig3 runs the sweep on both machine models.
func Fig3(quick bool) (*Fig3Result, error) {
	window := 30.0
	if quick {
		window = 8
	}
	res := &Fig3Result{}
	machines := []struct {
		name string
		cfg  cluster.Config
	}{
		{"voltrino", cluster.Voltrino(1)},
		{"chameleon", cluster.ChameleonCloud(1)},
	}
	targets := []struct {
		name  string
		level anomaly.CacheLevel
	}{
		{"none", 0}, {"L1", anomaly.L1}, {"L2", anomaly.L2}, {"L3", anomaly.L3},
	}
	for _, m := range machines {
		for _, target := range targets {
			c := cluster.New(m.cfg)
			if target.level != 0 {
				cc := anomaly.NewCacheCopy(c.Config().Machine, target.level)
				// SMT sibling of CPU 0, sharing L1/L2/L3 with the rank.
				c.Place(cc, 0, c.Config().Machine.PhysCores())
			}
			profile, _ := apps.ByName("miniGhost")
			profile.Iterations = 1 << 20
			job := apps.Launch(c, profile, []int{0}, 1)
			eng := sim.New(sim.DefaultDT)
			eng.Add(c)
			eng.RunFor(window)
			res.Cases = append(res.Cases, Fig3Case{
				Machine: m.name,
				Target:  target.name,
				MPKI:    job.L3MPKI(),
			})
		}
	}
	return res, nil
}

// MPKI returns the measured MPKI for a machine/target pair (-1 if absent).
func (r *Fig3Result) MPKI(machine, target string) float64 {
	for _, c := range r.Cases {
		if c.Machine == machine && c.Target == target {
			return c.MPKI
		}
	}
	return -1
}

// Render implements Result.
func (r *Fig3Result) Render() string {
	c := report.BarChart{
		Title: "Figure 3: cachecopy working-set level vs. miniGhost L3 MPKI",
		Unit:  "MPKI",
	}
	for _, cs := range r.Cases {
		c.Add(fmt.Sprintf("%-9s ws=%s", cs.Machine, cs.Target), cs.MPKI)
	}
	return c.String()
}
