package experiments

import (
	"hpas/internal/anomaly"
	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/report"
	"hpas/internal/sim"
)

// Fig4Case is one bar of Figure 4.
type Fig4Case struct {
	Label    string
	BestRate float64 // STREAM best rate, bytes/s
}

// Fig4Result holds the STREAM-vs-anomaly experiment of the paper's
// Figure 4: membw instances on the other cores of the socket crush the
// bandwidth available to STREAM on core 0, while an equal number of
// cachecopy instances leave it almost untouched.
type Fig4Result struct {
	Cases []Fig4Case
}

// Fig4 runs the sweep.
func Fig4(quick bool) (*Fig4Result, error) {
	window := 15.0
	if quick {
		window = 5
	}
	run := func(label string, place func(c *cluster.Cluster)) Fig4Case {
		c := cluster.New(cluster.Voltrino(1))
		s := apps.NewStream()
		c.Place(s, 0, 0)
		if place != nil {
			place(c)
		}
		eng := sim.New(sim.DefaultDT)
		eng.Add(c)
		eng.RunFor(window)
		return Fig4Case{Label: label, BestRate: s.BestRate()}
	}
	placeMemBW := func(n int) func(c *cluster.Cluster) {
		return func(c *cluster.Cluster) {
			for i := 1; i <= n; i++ {
				c.Place(anomaly.NewMemBW(), 0, i) // cores 1..n, same socket
			}
		}
	}
	res := &Fig4Result{}
	res.Cases = append(res.Cases, run("none", nil))
	for _, n := range []int{1, 3, 7, 15} {
		res.Cases = append(res.Cases, run(label("membw", n), placeMemBW(n)))
	}
	res.Cases = append(res.Cases, run("cachecopy 15x", func(c *cluster.Cluster) {
		for i := 1; i <= 15; i++ {
			c.Place(anomaly.NewCacheCopy(c.Config().Machine, anomaly.L3), 0, i)
		}
	}))
	return res, nil
}

func label(name string, n int) string {
	switch n {
	case 1:
		return name + " 1x"
	case 3:
		return name + " 3x"
	case 7:
		return name + " 7x"
	default:
		return name + " 15x"
	}
}

// Rate returns the measured rate for a label (-1 if absent).
func (r *Fig4Result) Rate(lbl string) float64 {
	for _, c := range r.Cases {
		if c.Label == lbl {
			return c.BestRate
		}
	}
	return -1
}

// Render implements Result.
func (r *Fig4Result) Render() string {
	c := report.BarChart{
		Title: "Figure 4: membw / cachecopy effect on STREAM best rate (Voltrino)",
		Unit:  "GB/s",
	}
	for _, cs := range r.Cases {
		c.Add(cs.Label, cs.BestRate/1e9)
	}
	return c.String()
}
