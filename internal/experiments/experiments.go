// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated cluster. Each experiment is a function
// returning a structured result with a Render method; the registry in
// registry.go maps experiment IDs (fig2..fig13, table1, table2) to
// runners for the hpas-bench and hpas-sim commands.
//
// Every experiment accepts a "quick" flag that shrinks run lengths and
// sweep densities so the whole suite stays fast inside go test benches;
// the full-size variants match the paper's setups.
package experiments

// Result is a rendered experiment outcome.
type Result interface {
	// Render returns the terminal representation of the figure/table.
	Render() string
}
