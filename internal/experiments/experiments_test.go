package experiments

import (
	"strings"
	"testing"
)

// All experiment tests run in quick mode; the full-size runs are
// exercised by the repository benchmarks and hpas-bench.

func TestTable1(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Infos) != 8 {
		t.Fatalf("%d anomalies", len(r.Infos))
	}
	out := r.Render()
	for _, name := range []string{"cpuoccupy", "iobandwidth", "utilization%"} {
		if !strings.Contains(out, name) {
			t.Errorf("render missing %q", name)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Intensities) != 10 {
		t.Fatalf("%d points", len(r.Intensities))
	}
	// The anomaly must track the requested intensity closely (Fig 2's
	// whole point), allowing for OS noise.
	if e := r.MaxAbsError(); e > 4 {
		t.Errorf("max |measured-requested| = %v%%", e)
	}
	// Monotone in intensity.
	for i := 1; i < len(r.Utilizations); i++ {
		if r.Utilizations[i] <= r.Utilizations[i-1] {
			t.Errorf("utilization not increasing at %v", r.Intensities[i])
		}
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 8 {
		t.Fatalf("%d cases", len(r.Cases))
	}
	for _, m := range []string{"voltrino", "chameleon"} {
		order := []string{"none", "L1", "L2", "L3"}
		for i := 1; i < len(order); i++ {
			lo, hi := r.MPKI(m, order[i-1]), r.MPKI(m, order[i])
			if hi+1e-9 < lo {
				t.Errorf("%s: MPKI decreased from %s (%v) to %s (%v)", m, order[i-1], lo, order[i], hi)
			}
		}
		if r.MPKI(m, "L3") <= r.MPKI(m, "none") {
			t.Errorf("%s: L3-sized cachecopy must raise MPKI", m)
		}
	}
	// Chameleon's smaller L3 suffers more, as in the paper.
	if r.MPKI("chameleon", "L3") <= r.MPKI("voltrino", "L3") {
		t.Error("chameleon should see more misses than voltrino")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(true)
	if err != nil {
		t.Fatal(err)
	}
	none := r.Rate("none")
	if none < 12e9 {
		t.Errorf("clean STREAM = %v", none)
	}
	// membw reduces bandwidth monotonically with instance count.
	prev := none
	for _, lbl := range []string{"membw 1x", "membw 3x", "membw 7x", "membw 15x"} {
		v := r.Rate(lbl)
		if v > prev+1e6 {
			t.Errorf("%s rate %v above previous %v", lbl, v, prev)
		}
		prev = v
	}
	if r.Rate("membw 15x") > 0.5*none {
		t.Error("membw x15 should at least halve STREAM")
	}
	// cachecopy leaves bandwidth intact (the paper's key contrast).
	if r.Rate("cachecopy 15x") < 0.9*none {
		t.Error("cachecopy x15 should not dent STREAM")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Times) != len(r.MemLeak) || len(r.Times) != len(r.MemEater) {
		t.Fatal("length mismatch")
	}
	n := len(r.Times)
	quarter, half, threeQ := n/4, n/2, 3*n/4
	// memleak grows through the window.
	if !(r.MemLeak[quarter] < r.MemLeak[half] && r.MemLeak[half] < r.MemLeak[threeQ]) {
		t.Errorf("memleak not growing: %v %v %v", r.MemLeak[quarter], r.MemLeak[half], r.MemLeak[threeQ])
	}
	// memeater plateaus: mid and late footprints are similar and above
	// the start.
	if r.MemEater[half] <= r.MemEater[2] {
		t.Error("memeater did not ramp")
	}
	ratio := r.MemEater[threeQ] / r.MemEater[half]
	if ratio > 1.15 || ratio < 0.85 {
		t.Errorf("memeater not flat after ramp: %v", ratio)
	}
	// Both release memory after their window ends.
	if r.MemLeak[n-1] >= r.MemLeak[threeQ] {
		t.Error("memleak footprint should drop after its window")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(true)
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth rises with message size for every condition.
	for n, bws := range r.Bandwidths {
		for i := 1; i < len(bws); i++ {
			if bws[i] < bws[i-1]-1e-6 {
				t.Errorf("%d nodes: bandwidth fell with larger message", n)
			}
		}
	}
	// More anomaly nodes -> (weakly) less OSU bandwidth; the damage is
	// bounded by adaptive routing.
	if !(r.PeakBandwidth(6) < r.PeakBandwidth(0)) {
		t.Error("6 anomaly nodes should reduce peak bandwidth")
	}
	if r.PeakBandwidth(6) < 0.3*r.PeakBandwidth(0) {
		t.Error("reduction too severe for adaptive routing")
	}
	if r.PeakBandwidth(2) > r.PeakBandwidth(0)+1e-6 {
		t.Error("bandwidth should not rise with anomalies")
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(true)
	if err != nil {
		t.Fatal(err)
	}
	none, bw, meta := r.Case("none"), r.Case("iobandwidth"), r.Case("iometadata")
	if none == nil || bw == nil || meta == nil {
		t.Fatal("missing cases")
	}
	// Both anomalies reduce IOR bandwidth; iobandwidth hurts data more.
	if !(bw.WriteBW < none.WriteBW && meta.WriteBW < none.WriteBW) {
		t.Error("write bandwidth should drop under both anomalies")
	}
	if bw.WriteBW >= meta.WriteBW {
		t.Error("iobandwidth should hurt data bandwidth more than iometadata")
	}
	if !(bw.ReadBW < none.ReadBW && meta.ReadBW < none.ReadBW) {
		t.Error("read bandwidth should drop under both anomalies")
	}
	// iometadata hurts the metadata (access) phase most.
	if meta.Access >= none.Access {
		t.Error("iometadata should reduce access rate")
	}
	if meta.Access >= bw.Access {
		t.Error("iometadata should hurt access more than iobandwidth")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r, err := Table2(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if m := r.Matches(); m != 8 {
		t.Errorf("only %d/8 apps match the paper's Table 2 classes\n%s", m, r.Render())
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		for _, an := range r.Anomalies {
			if r.Times[app][an] <= 0 {
				t.Fatalf("%s/%s did not finish", app, an)
			}
		}
	}
	// CPU-intensive app: cachecopy and cpuoccupy dominate.
	if r.Slowdown("CoMD", "cachecopy") < 1.3 {
		t.Errorf("cachecopy slowdown on CoMD = %v", r.Slowdown("CoMD", "cachecopy"))
	}
	if r.Slowdown("CoMD", "cpuoccupy") < 1.2 {
		t.Errorf("cpuoccupy slowdown on CoMD = %v", r.Slowdown("CoMD", "cpuoccupy"))
	}
	// Memory-intensive app: membw dominates.
	if r.Slowdown("miniGhost", "membw") < r.Slowdown("miniGhost", "cpuoccupy") {
		t.Error("membw should hurt miniGhost more than cpuoccupy")
	}
	if r.Slowdown("miniGhost", "membw") < r.Slowdown("CoMD", "membw") {
		t.Error("membw should hurt the memory-bound app more")
	}
	// memleak/memeater/netoccupy have no visible effect (paper Fig 8).
	for _, app := range r.Apps {
		for _, an := range []string{"memeater", "memleak", "netoccupy"} {
			if s := r.Slowdown(app, an); s > 1.08 {
				t.Errorf("%s should not slow %s, slowdown %v", an, app, s)
			}
		}
	}
}

func TestFig9And10Shape(t *testing.T) {
	r, err := Fig9(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 6 {
		t.Fatalf("%d classes", len(r.Classes))
	}
	for _, name := range ClassifierNames() {
		if len(r.F1[name]) != 6 {
			t.Errorf("%s has %d F1 scores", name, len(r.F1[name]))
		}
		if r.Confusions[name].Total() != r.Samples {
			t.Errorf("%s confusion total mismatch", name)
		}
	}
	f10, err := Fig10(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f10.Render(), "cachecopy") {
		t.Error("fig10 render incomplete")
	}
	// Rows of the rendered confusion matrix are normalized.
	for ti := range f10.Confusion.Classes {
		row := f10.Confusion.Row(ti)
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("row %d sums to %v", ti, sum)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(true)
	if err != nil {
		t.Fatal(err)
	}
	rr := r.Allocation("RoundRobin")
	if len(rr) != 4 || rr[0] != 0 || rr[1] != 1 || rr[2] != 2 || rr[3] != 3 {
		t.Errorf("RR allocation = %v, want [0 1 2 3]", rr)
	}
	wb := r.Allocation("WBAS")
	for _, n := range wb {
		if n == 0 || n == 2 {
			t.Errorf("WBAS picked anomalous node %d: %v", n, wb)
		}
	}
	if r.Improvement() < 0.1 {
		t.Errorf("WBAS improvement = %v, want > 10%%", r.Improvement())
	}
	if !strings.Contains(r.Render(), "WBAS") {
		t.Error("render incomplete")
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Fig13(true)
	if err != nil {
		t.Fatal(err)
	}
	// Tie at zero anomaly.
	b0, g0 := r.At(0)
	if b0 != g0 {
		t.Errorf("balancers should tie at 0: %v vs %v", b0, g0)
	}
	// Greedy wins in the mid-range.
	bMid, gMid := r.At(800)
	if gMid >= bMid {
		t.Errorf("greedy (%v) should beat blind (%v) at 800%%", gMid, bMid)
	}
	// Near-tie at saturation.
	bSat, gSat := r.At(3200)
	if gSat > bSat*1.05 {
		t.Errorf("greedy should not lose at saturation: %v vs %v", gSat, bSat)
	}
	if bSat < b0*1.5 {
		t.Error("saturation should roughly double iteration time")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("%d experiments registered", len(all))
	}
	if _, err := ByID("fig8"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestAblationMemBWShape(t *testing.T) {
	r, err := AblationMemBW(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.F1With) != len(r.Classes) || len(r.F1Without) != len(r.Classes) {
		t.Fatal("F1 vectors malformed")
	}
	// The added counter must not hurt overall quality, which would
	// contradict the paper's hypothesis for the Fig. 10 confusion.
	if r.MacroWith < r.MacroWithout-0.08 {
		t.Errorf("membw counter degraded macro F1: %v -> %v", r.MacroWithout, r.MacroWith)
	}
	if !strings.Contains(r.Render(), "membw ctr") {
		t.Error("render incomplete")
	}
	// The counter measures membw's signature directly and must not
	// materially hurt that class.
	if r.MembwGain() < -0.1 {
		t.Errorf("membw counter hurt the membw class: %v", r.MembwGain())
	}
}

func TestAblationRoutingShape(t *testing.T) {
	r, err := AblationRouting(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Adaptive) != len(r.Pairs) || len(r.Direct) != len(r.Pairs) {
		t.Fatal("series malformed")
	}
	// Adaptive routing must dominate at every contention level, and the
	// minimal-only configuration must collapse much harder.
	for i := range r.Pairs {
		if r.Adaptive[i] < r.Direct[i] {
			t.Errorf("%d pairs: adaptive (%v) below minimal-only (%v)", r.Pairs[i], r.Adaptive[i], r.Direct[i])
		}
	}
	last := len(r.Pairs) - 1
	if r.Direct[last] > 0.5*r.Adaptive[last] {
		t.Error("minimal-only should collapse far harder under contention")
	}
}

func TestAblationRebalanceShape(t *testing.T) {
	r, err := AblationRebalance(true)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Monotone() {
		t.Errorf("shorter periods should adapt (weakly) faster: %v", r.MeanIter)
	}
	// Every greedy configuration beats the blind balancer.
	for i, m := range r.MeanIter {
		if m >= r.Blind {
			t.Errorf("period %d: greedy (%v) not better than blind (%v)", r.Periods[i], m, r.Blind)
		}
	}
}

func TestMotivationShape(t *testing.T) {
	r, err := Motivation(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Times) != 6 {
		t.Fatalf("reps = %d", len(r.Times))
	}
	// Anomalies must create measurable variability.
	if r.MaxSlowdown() < 1.05 {
		t.Errorf("MaxSlowdown = %v", r.MaxSlowdown())
	}
	if !strings.Contains(r.Render(), "CoV") {
		t.Error("render incomplete")
	}
}

func TestDragonflyExtensionShape(t *testing.T) {
	r, err := DragonflyExperiment(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IntraGroup) != 4 || len(r.InterGroup) != 4 {
		t.Fatal("series malformed")
	}
	// Clean runs: both localities near peak.
	if r.IntraGroup[0] < 8 || r.InterGroup[0] < 8 {
		t.Errorf("clean bandwidth too low: %v / %v", r.IntraGroup[0], r.InterGroup[0])
	}
	// Under contention the inter-group flow, funnelled through one
	// global link, must degrade more than the intra-group flow.
	if r.InterGroup[3] >= r.IntraGroup[3] {
		t.Errorf("inter-group (%v) should degrade below intra-group (%v)",
			r.InterGroup[3], r.IntraGroup[3])
	}
	// Monotone degradation with contention.
	for i := 1; i < 4; i++ {
		if r.InterGroup[i] > r.InterGroup[i-1]+1e-6 {
			t.Error("inter-group bandwidth rose with contention")
		}
	}
}
