package experiments

import (
	"fmt"

	"hpas/internal/anomaly"
	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/report"
	"hpas/internal/sim"
)

// Fig6Result holds the OSU-vs-netoccupy sweep of the paper's Figure 6:
// OSU bandwidth between two nodes on different switches, with 0/2/4/6
// nodes running netoccupy pairs across the same switch pair. Adaptive
// routing over Voltrino's redundant links limits the reduction.
type Fig6Result struct {
	MsgKB      []float64         // message sizes, KiB
	Bandwidths map[int][]float64 // anomaly node count -> GB/s per size
	NodeCounts []int             // sweep order: 0, 2, 4, 6
}

// Fig6 runs the sweep.
func Fig6(quick bool) (*Fig6Result, error) {
	window := 4.0
	sizesKB := []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if quick {
		window = 1.5
		sizesKB = []float64{16, 256, 8192}
	}
	res := &Fig6Result{
		MsgKB:      sizesKB,
		Bandwidths: make(map[int][]float64),
		NodeCounts: []int{0, 2, 4, 6},
	}
	for _, nodes := range res.NodeCounts {
		pairs := nodes / 2
		for _, kb := range sizesKB {
			c := cluster.New(cluster.Voltrino(8))
			// OSU between node 0 (switch 0) and node 4 (switch 1).
			osu := apps.NewOSU(0, 4, kb*1024)
			c.Place(osu, 0, 0)
			// Anomaly pairs on the remaining nodes of the same switches.
			for p := 0; p < pairs; p++ {
				c.Place(anomaly.NewNetOccupy(1+p, 5+p), 1+p, 0)
			}
			eng := sim.New(sim.DefaultDT)
			eng.Add(c)
			eng.RunFor(window)
			res.Bandwidths[nodes] = append(res.Bandwidths[nodes], osu.Bandwidth()/1e9)
		}
	}
	return res, nil
}

// PeakBandwidth returns the largest-message bandwidth for the given
// anomaly node count (GB/s).
func (r *Fig6Result) PeakBandwidth(nodes int) float64 {
	bws := r.Bandwidths[nodes]
	if len(bws) == 0 {
		return 0
	}
	return bws[len(bws)-1]
}

// Render implements Result.
func (r *Fig6Result) Render() string {
	series := make(map[string][]float64)
	var order []string
	for _, n := range r.NodeCounts {
		name := fmt.Sprintf("%d nodes", n)
		order = append(order, name)
		series[name] = r.Bandwidths[n]
	}
	return report.Lines(
		"Figure 6: OSU bandwidth (GB/s) vs. message size under netoccupy (Voltrino)",
		"KB", r.MsgKB, series, order)
}
