package experiments

import (
	"fmt"
	"strings"

	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/core"
	"hpas/internal/report"
	"hpas/internal/sched"
	"hpas/internal/sim"
	"hpas/internal/stats"
	"hpas/internal/units"
)

// Fig12Policy holds one allocation policy's outcome.
type Fig12Policy struct {
	Policy   string
	Nodes    []int     // allocation chosen (the paper's Figure 11)
	Times    []float64 // SW4lite completion times, one per repetition
	MeanTime float64
}

// Fig12Result reproduces the paper's Figures 11 and 12: on an 8-node
// system with cpuoccupy on node 0 and memleak on node 2, Round-Robin
// allocates SW4lite onto the anomalous nodes while WBAS avoids them and
// finishes substantially faster (26% in the paper).
type Fig12Result struct {
	Policies []Fig12Policy
	// NodeStates snapshotted at allocation time, for the report.
	States []sched.NodeState
}

// Fig12 runs the experiment. quick shrinks iteration counts and reps.
func Fig12(quick bool) (*Fig12Result, error) {
	reps := 3
	iterations := 0
	warmup := 80.0
	if quick {
		reps = 1
		iterations = 3
		warmup = 30
	}
	res := &Fig12Result{}
	for _, policy := range []sched.Policy{sched.RoundRobin{}, sched.WBAS{}} {
		p := Fig12Policy{Policy: policy.Name()}
		for rep := 0; rep < reps; rep++ {
			t, nodes, states, err := fig12Run(policy, iterations, warmup, uint64(rep+1))
			if err != nil {
				return nil, err
			}
			p.Times = append(p.Times, t)
			p.Nodes = nodes
			if policy.Name() == "WBAS" && rep == 0 {
				res.States = states
			}
		}
		p.MeanTime = stats.Mean(p.Times)
		res.Policies = append(res.Policies, p)
	}
	return res, nil
}

// fig12Run warms up an 8-node cluster with the two anomalies, snapshots
// the scheduler's node view, allocates 4 nodes with the policy, runs
// SW4lite there, and returns its completion time.
func fig12Run(policy sched.Policy, iterations int, warmup float64, seed uint64) (float64, []int, []sched.NodeState, error) {
	cfg := cluster.Voltrino(8)
	cfg.Seed = seed
	c := cluster.New(cfg)
	// cpuoccupy: 100% of one core on node 0.
	if _, err := core.Inject(c, core.Spec{Name: "cpuoccupy", Node: 0, CPU: 32, Intensity: 100}); err != nil {
		return 0, nil, nil, err
	}
	// memleak on node 2: grows fast, capped so ~1 GB stays free.
	leakLimit := cfg.Machine.Memory - cfg.Machine.BaselineResident - 1*units.GiB
	leakRate := float64(leakLimit) / float64(20*units.MiB) / (warmup * 0.75)
	if _, err := core.Inject(c, core.Spec{
		Name: "memleak", Node: 2, CPU: 34,
		Intensity: leakRate, Limit: leakLimit,
	}); err != nil {
		return 0, nil, nil, err
	}

	eng := sim.New(sim.DefaultDT)
	eng.Add(c)
	eng.RunFor(warmup)

	// Scheduler's monitoring view.
	var states []sched.NodeState
	for i := 0; i < c.NumNodes(); i++ {
		states = append(states, sched.NodeState{
			ID:       i,
			Load:     c.Node(i).CPULoad(),
			Load5Min: c.Node(i).CPULoad(),
			MemFree:  c.Node(i).MemFree(),
		})
	}
	nodes, err := policy.Select(states, 4)
	if err != nil {
		return 0, nil, nil, err
	}

	profile, _ := apps.ByName("sw4lite")
	if iterations > 0 {
		profile.Iterations = iterations
	}
	job := apps.Launch(c, profile, nodes, cfg.Machine.PhysCores())
	start := eng.Now()
	if _, ok := eng.RunUntil(job.Done, 4000); !ok {
		return 0, nodes, states, fmt.Errorf("experiments: sw4lite did not finish under %s", policy.Name())
	}
	return job.FinishedAt() - start, nodes, states, nil
}

// Mean returns the mean completion time under the named policy (-1 if
// absent).
func (r *Fig12Result) Mean(policy string) float64 {
	for _, p := range r.Policies {
		if p.Policy == policy {
			return p.MeanTime
		}
	}
	return -1
}

// Allocation returns the nodes chosen by the named policy.
func (r *Fig12Result) Allocation(policy string) []int {
	for _, p := range r.Policies {
		if p.Policy == policy {
			return p.Nodes
		}
	}
	return nil
}

// Improvement returns WBAS's relative runtime reduction vs Round-Robin.
func (r *Fig12Result) Improvement() float64 {
	rr, wb := r.Mean("RoundRobin"), r.Mean("WBAS")
	if rr <= 0 {
		return 0
	}
	return (rr - wb) / rr
}

// Render implements Result.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	t := report.Table{
		Title:   "Figure 11/12: SW4lite allocation and runtime under RR vs WBAS (cpuoccupy@node0, memleak@node2)",
		Headers: []string{"policy", "allocation", "runs (s)", "mean (s)"},
	}
	for _, p := range r.Policies {
		runs := make([]string, len(p.Times))
		for i, v := range p.Times {
			runs[i] = fmt.Sprintf("%.0f", v)
		}
		t.AddRow(p.Policy, fmt.Sprint(p.Nodes), strings.Join(runs, " "), fmt.Sprintf("%.0f", p.MeanTime))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nWBAS reduces mean execution time by %.0f%% (paper: 26%%)\n", r.Improvement()*100)
	return b.String()
}
