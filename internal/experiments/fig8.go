package experiments

import (
	"fmt"

	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/core"
	"hpas/internal/report"
	"hpas/internal/units"
)

// Fig8Anomalies are the injection conditions of Figure 8, in the
// figure's order ("none" last, as in the paper's x axis).
func Fig8Anomalies() []string {
	return []string{"cachecopy", "cpuoccupy", "membw", "memeater", "memleak", "netoccupy", "none"}
}

// Fig8Result holds the application-runtime matrix of the paper's
// Figure 8: every Table 2 application run with every anomaly.
type Fig8Result struct {
	Apps      []string
	Anomalies []string
	// Times[app][anomaly] is the completion time in seconds (-1 when
	// the run did not finish inside the bound).
	Times map[string]map[string]float64
}

// fig8Spec returns the injection for one condition. The anomaly runs on
// node 0 of the job (or, for netoccupy, between bystander nodes whose
// traffic crosses the same switches).
func fig8Spec(name string) []core.Spec {
	switch name {
	case "none":
		return nil
	case "cachecopy":
		return []core.Spec{{Name: "cachecopy", Node: 0, CPU: 32}}
	case "cpuoccupy":
		return []core.Spec{{Name: "cpuoccupy", Node: 0, CPU: 32, Intensity: 100}}
	case "membw":
		return []core.Spec{{Name: "membw", Node: 0, CPU: 32, Count: 4, StreamBW: 25e9}}
	case "memeater":
		return []core.Spec{{Name: "memeater", Node: 0, CPU: 34, Size: 3 * units.GiB}}
	case "memleak":
		return []core.Spec{{Name: "memleak", Node: 0, CPU: 34, Intensity: 1}}
	case "netoccupy":
		// Pairs crossing the same switch pair as the job's halo traffic.
		return []core.Spec{
			{Name: "netoccupy", Node: 1, Peer: 5},
			{Name: "netoccupy", Node: 2, Peer: 6},
		}
	}
	return nil
}

// Fig8 runs the matrix. quick shrinks iteration counts and the app set.
func Fig8(quick bool) (*Fig8Result, error) {
	appNames := apps.Names()
	iterations := 0 // profile default (full length)
	if quick {
		appNames = []string{"CoMD", "miniGhost"}
		iterations = 3
	}
	res := &Fig8Result{
		Apps:      appNames,
		Anomalies: Fig8Anomalies(),
		Times:     make(map[string]map[string]float64),
	}
	for _, app := range appNames {
		res.Times[app] = make(map[string]float64)
		for _, an := range res.Anomalies {
			run, err := core.Run(core.RunConfig{
				Cluster:    cluster.Voltrino(16),
				App:        app,
				AppNodes:   []int{0, 4, 8, 12}, // one node per switch
				Iterations: iterations,
				Anomalies:  fig8Spec(an),
				MaxSeconds: 4000,
				Seed:       8,
			})
			if err != nil {
				return nil, err
			}
			t := run.Duration
			if !run.Finished {
				t = -1
			}
			res.Times[app][an] = t
		}
	}
	return res, nil
}

// Slowdown returns Times[app][anomaly] / Times[app]["none"].
func (r *Fig8Result) Slowdown(app, an string) float64 {
	clean := r.Times[app]["none"]
	if clean <= 0 {
		return 0
	}
	return r.Times[app][an] / clean
}

// Render implements Result.
func (r *Fig8Result) Render() string {
	t := report.Table{
		Title:   "Figure 8: application execution time (s) under each anomaly (Voltrino)",
		Headers: append([]string{"app"}, r.Anomalies...),
	}
	for _, app := range r.Apps {
		cells := []string{app}
		for _, an := range r.Anomalies {
			cells = append(cells, fmt.Sprintf("%.0f", r.Times[app][an]))
		}
		t.AddRow(cells...)
	}
	return t.String()
}
