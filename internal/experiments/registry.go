package experiments

import (
	"fmt"
	"sort"

	"hpas/internal/anomaly"
	"hpas/internal/report"
)

// Experiment is one registered paper artifact.
type Experiment struct {
	ID    string // "fig2".."fig13", "table1", "table2"
	Title string
	Run   func(quick bool) (Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Anomaly catalogue and knobs", func(q bool) (Result, error) { return Table1() }},
		{"fig2", "cpuoccupy intensity vs CPU utilization", wrap(Fig2)},
		{"fig3", "cachecopy working set vs miniGhost L3 MPKI", wrap(Fig3)},
		{"fig4", "membw/cachecopy effect on STREAM bandwidth", wrap(Fig4)},
		{"fig5", "memleak/memeater memory timelines", wrap(Fig5)},
		{"fig6", "netoccupy effect on OSU bandwidth", wrap(Fig6)},
		{"fig7", "I/O anomalies' effect on IOR", wrap(Fig7)},
		{"table2", "Application characteristics", wrap(Table2)},
		{"fig8", "Application runtime under each anomaly", wrap(Fig8)},
		{"fig9", "Diagnosis F1 scores (3 classifiers)", wrap(Fig9)},
		{"fig10", "RandomForest confusion matrix", wrap(Fig10)},
		{"fig12", "RR vs WBAS allocation under anomalies (and Fig 11)", wrap(Fig12)},
		{"fig13", "Load balancers vs cpuoccupy intensity", wrap(Fig13)},
		{"variability", "Run-to-run variability under random anomalies (Section 2)", wrap(Motivation)},
		{"ablation-membw-counter", "Diagnosis with a memory-bandwidth metric added", wrap(AblationMemBW)},
		{"ablation-routing", "Figure 6 with adaptive routing disabled", wrap(AblationRouting)},
		{"ablation-rebalance", "Load-balancing period sweep under a mid-run anomaly", wrap(AblationRebalance)},
		{"extension-dragonfly", "netoccupy on a multi-group dragonfly (topology dependence)", wrap(DragonflyExperiment)},
	}
}

// wrap adapts a concrete runner to the registry signature.
func wrap[T Result](f func(bool) (T, error)) func(bool) (Result, error) {
	return func(q bool) (Result, error) { return f(q) }
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// Table1Result renders the anomaly catalogue.
type Table1Result struct {
	Infos []anomaly.Info
}

// Table1 returns the catalogue (no simulation needed).
func Table1() (*Table1Result, error) {
	return &Table1Result{Infos: anomaly.Catalog()}, nil
}

// Render implements Result.
func (r *Table1Result) Render() string {
	t := report.Table{
		Title:   "Table 1: HPAS anomalies (every anomaly also has configurable start/end times)",
		Headers: []string{"Anomaly type", "Name", "Behavior", "Runtime configuration options"},
	}
	for _, a := range r.Infos {
		knobs := ""
		for i, k := range a.Knobs {
			if i > 0 {
				knobs += ", "
			}
			knobs += k
		}
		t.AddRow(a.Type, a.Name, a.Behavior, knobs)
	}
	return t.String()
}
