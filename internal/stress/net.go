package stress

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"hpas/internal/units"
)

// NetOccupy is the netoccupy stressor: it streams large messages
// (default 100 MB, the size the paper found saturates the link) to a
// peer over TCP. The original uses SHMEM puts on the Cray Aries; TCP is
// the portable equivalent that still exercises the NIC and the path
// between two nodes.
//
// Run one NetOccupySink on the destination node and one NetOccupy per
// sending rank, pointing at the sink's address.
type NetOccupy struct {
	// Addr is the sink's host:port.
	Addr string
	// MessageSize is the size of each message (default 100 MiB).
	MessageSize units.ByteSize
	// Rate limits messages per second; 0 streams back-to-back.
	Rate float64

	bytes uint64
}

// Name implements Stressor.
func (s *NetOccupy) Name() string { return "netoccupy" }

// Run implements Stressor.
func (s *NetOccupy) Run(ctx context.Context) error {
	if s.Addr == "" {
		return fmt.Errorf("netoccupy: sink address required")
	}
	size := s.MessageSize
	if size <= 0 {
		size = 100 * units.MiB
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", s.Addr)
	if err != nil {
		return fmt.Errorf("netoccupy: dial %s: %w", s.Addr, err)
	}
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close() // unblock writes on cancellation
	}()
	msg := make([]byte, size)
	var tick *time.Ticker
	if s.Rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / s.Rate))
		defer tick.Stop()
	}
	for {
		if tick != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick.C:
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		n, err := conn.Write(msg)
		atomicAdd(&s.bytes, uint64(n))
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("netoccupy: write: %w", err)
		}
	}
}

// Bytes returns the bytes sent so far.
func (s *NetOccupy) Bytes() uint64 { return atomicLoad(&s.bytes) }

// NetOccupySink drains netoccupy traffic on the destination node.
type NetOccupySink struct {
	// Listener accepts sender connections. Use net.Listen("tcp", ...)
	// and share Listener.Addr() with the senders.
	Listener net.Listener

	bytes uint64
}

// Name implements Stressor.
func (s *NetOccupySink) Name() string { return "netoccupy-sink" }

// Run implements Stressor.
func (s *NetOccupySink) Run(ctx context.Context) error {
	if s.Listener == nil {
		return fmt.Errorf("netoccupy-sink: listener required")
	}
	go func() {
		<-ctx.Done()
		s.Listener.Close()
	}()
	for {
		conn, err := s.Listener.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("netoccupy-sink: accept: %w", err)
		}
		go func() {
			defer conn.Close()
			buf := make([]byte, 1<<20)
			for {
				n, err := conn.Read(buf)
				atomicAdd(&s.bytes, uint64(n))
				if err != nil {
					if err != io.EOF && ctx.Err() == nil {
						// Connection torn down mid-stream; nothing to do.
						_ = err
					}
					return
				}
			}
		}()
	}
}

// Bytes returns the bytes drained so far.
func (s *NetOccupySink) Bytes() uint64 { return atomicLoad(&s.bytes) }
