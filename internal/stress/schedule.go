package stress

import (
	"context"
	"fmt"
	"time"
)

// Scheduled wraps a stressor with the start/end window every Table 1
// anomaly supports: Run sleeps for Start, then drives the inner stressor
// for Duration (or until the outer context is cancelled).
type Scheduled struct {
	// Inner is the wrapped stressor.
	Inner Stressor
	// Start delays the anomaly's onset.
	Start time.Duration
	// Duration bounds the active phase; 0 means until cancellation.
	Duration time.Duration
}

// Name implements Stressor.
func (s *Scheduled) Name() string {
	if s.Inner == nil {
		return "scheduled"
	}
	return s.Inner.Name()
}

// Run implements Stressor.
func (s *Scheduled) Run(ctx context.Context) error {
	if s.Inner == nil {
		return fmt.Errorf("stress: scheduled stressor has no inner stressor")
	}
	if s.Start > 0 {
		timer := time.NewTimer(s.Start)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
	inner := ctx
	if s.Duration > 0 {
		var cancel context.CancelFunc
		inner, cancel = context.WithTimeout(ctx, s.Duration)
		defer cancel()
	}
	err := s.Inner.Run(inner)
	// The window closing on schedule is success, not failure.
	if err == context.DeadlineExceeded || err == context.Canceled {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return nil
	}
	return err
}
