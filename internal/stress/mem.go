package stress

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"hpas/internal/units"
)

func atomicAdd(p *uint64, n uint64) { atomic.AddUint64(p, n) }
func atomicLoad(p *uint64) uint64   { return atomic.LoadUint64(p) }

// CacheCopy is the cachecopy stressor: two contiguous arrays, each half
// the size of the target cache level (times Multiplier), copied back and
// forth so the level stays fully utilized. Target sizes are configured
// rather than probed, matching the original's L1/L2/L3 command-line knob.
type CacheCopy struct {
	// LevelSize is the size of the targeted cache level; the two copy
	// arrays total LevelSize*Multiplier bytes.
	LevelSize units.ByteSize
	// Multiplier scales the working set (default 1).
	Multiplier float64
	// Rate is the duty cycle in (0,1], default 1.
	Rate float64

	copies uint64
}

// Name implements Stressor.
func (s *CacheCopy) Name() string { return "cachecopy" }

// Run implements Stressor.
func (s *CacheCopy) Run(ctx context.Context) error {
	if s.LevelSize <= 0 {
		return fmt.Errorf("cachecopy: level size must be positive")
	}
	m := s.Multiplier
	if m <= 0 {
		m = 1
	}
	rate := s.Rate
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	half := int(float64(s.LevelSize) * m / 2)
	if half < 64 {
		half = 64
	}
	// One contiguous block, split in two, as posix_memalign'd arrays.
	block := make([]byte, 2*half)
	a, b := block[:half], block[half:]
	for i := range a {
		a[i] = byte(i)
	}
	return dutyCycle(ctx, rate, func(busy time.Duration) {
		deadline := time.Now().Add(busy)
		for time.Now().Before(deadline) {
			copy(b, a)
			copy(a, b)
			atomicAdd(&s.copies, 2)
		}
	})
}

// Copies returns the number of array copies performed.
func (s *CacheCopy) Copies() uint64 { return atomicLoad(&s.copies) }

// MemBW is the membw stressor: streaming writes over a buffer far larger
// than the last-level cache. The original uses x86 MOVNT* non-temporal
// stores; Go has no portable intrinsic for those, so this version relies
// on the buffer size to guarantee every write misses the cache. The
// bandwidth pressure matches; unlike the original it also evicts cache
// lines (see the package comment).
type MemBW struct {
	// BufferSize is the streamed buffer (default 256 MiB, well past any
	// L3).
	BufferSize units.ByteSize
	// Rate is the duty cycle in (0,1], default 1.
	Rate float64

	bytes uint64
}

// Name implements Stressor.
func (s *MemBW) Name() string { return "membw" }

// Run implements Stressor.
func (s *MemBW) Run(ctx context.Context) error {
	size := s.BufferSize
	if size <= 0 {
		size = 256 * units.MiB
	}
	rate := s.Rate
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	buf := make([]uint64, int(size)/8)
	var pos int
	return dutyCycle(ctx, rate, func(busy time.Duration) {
		deadline := time.Now().Add(busy)
		for time.Now().Before(deadline) {
			// 64-byte strides: one write per cache line, like a
			// non-temporal transpose walking column-major.
			for i := 0; i < 1<<16; i++ {
				buf[pos] = uint64(pos)
				pos += 8
				if pos >= len(buf) {
					pos = 0
				}
			}
			atomicAdd(&s.bytes, 1<<16*8)
		}
	})
}

// Bytes returns the bytes written so far.
func (s *MemBW) Bytes() uint64 { return atomicLoad(&s.bytes) }

// MemEater is the memeater stressor: allocate an array, fill it with
// pseudo-random values, grow it by the same amount (realloc-style), and
// repeat until the size limit, then keep re-touching it.
type MemEater struct {
	// ChunkSize is the initial size and per-iteration growth
	// (paper default 35 MB).
	ChunkSize units.ByteSize
	// Limit caps the footprint; required to keep the stressor safe.
	Limit units.ByteSize
	// Interval is the time between growth steps (default 1s).
	Interval time.Duration

	resident uint64
}

// Name implements Stressor.
func (s *MemEater) Name() string { return "memeater" }

// Run implements Stressor.
func (s *MemEater) Run(ctx context.Context) error {
	chunk := s.ChunkSize
	if chunk <= 0 {
		chunk = 35 * units.MiB
	}
	if s.Limit <= 0 {
		return fmt.Errorf("memeater: a footprint limit is required")
	}
	interval := s.Interval
	if interval <= 0 {
		interval = time.Second
	}
	buf := fillRandom(make([]byte, 0, chunk), int(chunk))
	atomic.StoreUint64(&s.resident, uint64(len(buf)))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		if units.ByteSize(len(buf))+chunk <= s.Limit {
			buf = fillRandom(buf, len(buf)+int(chunk))
		} else {
			// At the limit: keep the memory hot like the original.
			buf = fillRandom(buf[:0], cap(buf))
		}
		atomic.StoreUint64(&s.resident, uint64(len(buf)))
	}
}

// Resident returns the current footprint in bytes.
func (s *MemEater) Resident() uint64 { return atomic.LoadUint64(&s.resident) }

// MemLeak is the memleak stressor: each iteration allocates a chunk,
// fills it, and retains the pointer forever, so the footprint grows
// until Limit (a safety bound the C original does not have — it relies
// on the OOM killer instead).
type MemLeak struct {
	// ChunkSize is the per-iteration allocation (paper default 20 MB).
	ChunkSize units.ByteSize
	// Rate is iterations per second (default 1).
	Rate float64
	// Limit caps the leak; required to keep the stressor safe.
	Limit units.ByteSize

	leaked   [][]byte
	resident uint64
}

// Name implements Stressor.
func (s *MemLeak) Name() string { return "memleak" }

// Run implements Stressor.
func (s *MemLeak) Run(ctx context.Context) error {
	chunk := s.ChunkSize
	if chunk <= 0 {
		chunk = 20 * units.MiB
	}
	if s.Limit <= 0 {
		return fmt.Errorf("memleak: a leak limit is required")
	}
	rate := s.Rate
	if rate <= 0 {
		rate = 1
	}
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		if units.ByteSize(atomic.LoadUint64(&s.resident))+chunk > s.Limit {
			continue // saturated; a real leak would OOM here
		}
		s.leaked = append(s.leaked, fillRandom(nil, int(chunk)))
		atomic.AddUint64(&s.resident, uint64(chunk))
	}
}

// Resident returns the leaked bytes so far.
func (s *MemLeak) Resident() uint64 { return atomic.LoadUint64(&s.resident) }

// fillRandom grows buf to n bytes and fills the new region with a cheap
// pseudo-random pattern (the original uses rand(); quality is
// irrelevant, touching the pages is what matters).
func fillRandom(buf []byte, n int) []byte {
	start := len(buf)
	if cap(buf) < n {
		grown := make([]byte, n)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:n]
	}
	x := uint32(2463534242)
	for i := start; i < n; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		buf[i] = byte(x)
	}
	return buf
}
