// Package stress implements the eight HPAS anomalies as real userspace
// stressors that load the host machine, mirroring the original C suite:
// no kernel modules, no application changes, knobs for intensity, and a
// bounded run window.
//
// Caveats relative to the C originals are documented per stressor; the
// most important one is membw: Go has no portable non-temporal store
// intrinsic, so membw approximates MOVNT* with strided streaming writes
// over a buffer far larger than the last-level cache, which produces the
// same bandwidth pressure but also perturbs the cache (the paper's
// version does not). The simulation layer (internal/anomaly) models the
// true non-temporal behaviour.
package stress

import (
	"context"
	"sync/atomic"
	"time"
)

// Stressor is a runnable host anomaly.
type Stressor interface {
	// Name returns the anomaly name from Table 1.
	Name() string
	// Run loads the host until ctx is cancelled. It returns ctx.Err()
	// on cancellation or another error on failure.
	Run(ctx context.Context) error
}

// dutyCycle runs work() in busy bursts covering fraction duty of wall
// time, sleeping the remainder, until ctx is done. It mimics the
// original cpuoccupy's setitimer-based throttling with a 10 ms period.
func dutyCycle(ctx context.Context, duty float64, work func(busy time.Duration)) error {
	const period = 10 * time.Millisecond
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	busy := time.Duration(float64(period) * duty)
	idle := period - busy
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if busy > 0 {
			work(busy)
		}
		if idle > 0 {
			timer := time.NewTimer(idle)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
	}
}

// spin burns CPU for roughly d with integer arithmetic on registers.
func spin(d time.Duration, sink *uint64) {
	deadline := time.Now().Add(d)
	var x uint64 = 88172645463325252
	for i := 0; ; i++ {
		// xorshift keeps the loop from being optimized away.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if i%4096 == 0 && !time.Now().Before(deadline) {
			break
		}
	}
	atomic.AddUint64(sink, x)
}
