package stress

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hpas/internal/units"
)

// IOMetadata is the iometadata stressor: create files, write one
// character to each, close them, and delete them after every 10
// iterations, hammering the filesystem's metadata path. Point Dir at a
// directory on the shared filesystem under test.
type IOMetadata struct {
	// Dir is the target directory (must exist and be writable).
	Dir string
	// Rate limits create/write/close cycles per second; 0 = unthrottled.
	Rate float64
	// NTasks is the number of concurrent workers (default 1).
	NTasks int

	ops uint64
}

// Name implements Stressor.
func (s *IOMetadata) Name() string { return "iometadata" }

// Run implements Stressor.
func (s *IOMetadata) Run(ctx context.Context) error {
	if s.Dir == "" {
		return fmt.Errorf("iometadata: target directory required")
	}
	tasks := s.NTasks
	if tasks <= 0 {
		tasks = 1
	}
	errc := make(chan error, tasks)
	for w := 0; w < tasks; w++ {
		go func(w int) { errc <- s.worker(ctx, w) }(w)
	}
	var err error
	for w := 0; w < tasks; w++ {
		if e := <-errc; e != nil && e != context.Canceled && e != context.DeadlineExceeded && err == nil {
			err = e
		}
	}
	if err == nil {
		err = ctx.Err()
	}
	return err
}

func (s *IOMetadata) worker(ctx context.Context, id int) error {
	var tick *time.Ticker
	if s.Rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / s.Rate))
		defer tick.Stop()
	}
	var open []string
	defer func() {
		for _, p := range open {
			os.Remove(p)
		}
	}()
	for iter := 0; ; iter++ {
		if tick != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick.C:
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		path := filepath.Join(s.Dir, fmt.Sprintf("hpas-meta-%d-%d", id, iter%10))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("iometadata: %w", err)
		}
		if _, err := f.Write([]byte{'x'}); err != nil {
			//lint:allow erraudit the write error is already propagating; close is best-effort cleanup
			f.Close()
			return fmt.Errorf("iometadata: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("iometadata: %w", err)
		}
		open = append(open, path)
		atomicAdd(&s.ops, 1)
		// Delete the batch after 10 iterations, as the original does.
		if iter%10 == 9 {
			for _, p := range open {
				os.Remove(p)
			}
			open = open[:0]
		}
	}
}

// Ops returns the number of create/write/close cycles completed.
func (s *IOMetadata) Ops() uint64 { return atomicLoad(&s.ops) }

// IOBandwidth is the iobandwidth stressor: dd-style copies — write a
// file of pseudo-random data, then repeatedly copy it to a second file
// and back, streaming reads and writes through the filesystem.
type IOBandwidth struct {
	// Dir is the target directory (must exist and be writable).
	Dir string
	// FileSize is the copied file's size (default 64 MiB).
	FileSize units.ByteSize
	// NTasks is the number of concurrent copy loops (default 1).
	NTasks int

	bytes uint64
}

// Name implements Stressor.
func (s *IOBandwidth) Name() string { return "iobandwidth" }

// Run implements Stressor.
func (s *IOBandwidth) Run(ctx context.Context) error {
	if s.Dir == "" {
		return fmt.Errorf("iobandwidth: target directory required")
	}
	size := s.FileSize
	if size <= 0 {
		size = 64 * units.MiB
	}
	tasks := s.NTasks
	if tasks <= 0 {
		tasks = 1
	}
	errc := make(chan error, tasks)
	for w := 0; w < tasks; w++ {
		go func(w int) { errc <- s.worker(ctx, w, int(size)) }(w)
	}
	var err error
	for w := 0; w < tasks; w++ {
		if e := <-errc; e != nil && e != context.Canceled && e != context.DeadlineExceeded && err == nil {
			err = e
		}
	}
	if err == nil {
		err = ctx.Err()
	}
	return err
}

func (s *IOBandwidth) worker(ctx context.Context, id, size int) error {
	src := filepath.Join(s.Dir, fmt.Sprintf("hpas-bw-%d-a", id))
	dst := filepath.Join(s.Dir, fmt.Sprintf("hpas-bw-%d-b", id))
	defer os.Remove(src)
	defer os.Remove(dst)
	data := fillRandom(nil, size)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		return fmt.Errorf("iobandwidth: %w", err)
	}
	atomicAdd(&s.bytes, uint64(size))
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		in, err := os.ReadFile(src)
		if err != nil {
			return fmt.Errorf("iobandwidth: %w", err)
		}
		if err := os.WriteFile(dst, in, 0o644); err != nil {
			return fmt.Errorf("iobandwidth: %w", err)
		}
		atomicAdd(&s.bytes, uint64(2*len(in)))
		src, dst = dst, src
	}
}

// Bytes returns bytes moved (read+written) so far.
func (s *IOBandwidth) Bytes() uint64 { return atomicLoad(&s.bytes) }
