package stress

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hpas/internal/units"
)

// runFor runs a stressor under a timeout and asserts it returns the
// context error (i.e. it stopped because we told it to).
func runFor(t *testing.T, s Stressor, d time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.Run(ctx); err != nil && err != context.DeadlineExceeded && err != context.Canceled {
		t.Fatalf("%s: %v", s.Name(), err)
	}
}

func TestCPUOccupyDoesWork(t *testing.T) {
	s := &CPUOccupy{Utilization: 100}
	runFor(t, s, 80*time.Millisecond)
	if s.Iterations() == 0 {
		t.Error("no busy bursts completed")
	}
}

func TestCPUOccupyValidation(t *testing.T) {
	if err := (&CPUOccupy{Utilization: 150}).Run(context.Background()); err == nil {
		t.Error("expected utilization validation error")
	}
	if err := (&CPUOccupy{Utilization: 50, Workers: 1 << 20}).Run(context.Background()); err == nil {
		t.Error("expected worker validation error")
	}
}

func TestCPUOccupyZeroUtilizationIdles(t *testing.T) {
	s := &CPUOccupy{Utilization: 0}
	runFor(t, s, 50*time.Millisecond)
	// No busy bursts should run at 0%.
	if s.Iterations() != 0 {
		t.Errorf("0%% utilization ran %d bursts", s.Iterations())
	}
}

func TestCacheCopy(t *testing.T) {
	s := &CacheCopy{LevelSize: 32 * units.KiB}
	runFor(t, s, 60*time.Millisecond)
	if s.Copies() == 0 {
		t.Error("no copies performed")
	}
	if err := (&CacheCopy{}).Run(context.Background()); err == nil {
		t.Error("expected level-size validation error")
	}
}

func TestMemBW(t *testing.T) {
	s := &MemBW{BufferSize: 8 * units.MiB}
	runFor(t, s, 60*time.Millisecond)
	if s.Bytes() == 0 {
		t.Error("no bytes streamed")
	}
}

func TestMemEater(t *testing.T) {
	s := &MemEater{ChunkSize: units.MiB, Limit: 4 * units.MiB, Interval: 5 * time.Millisecond}
	runFor(t, s, 100*time.Millisecond)
	if s.Resident() < uint64(units.MiB) {
		t.Errorf("resident = %d", s.Resident())
	}
	if s.Resident() > uint64(4*units.MiB) {
		t.Errorf("resident %d exceeds limit", s.Resident())
	}
	if err := (&MemEater{ChunkSize: units.MiB}).Run(context.Background()); err == nil {
		t.Error("expected limit validation error")
	}
}

func TestMemLeakGrowsAndCaps(t *testing.T) {
	s := &MemLeak{ChunkSize: units.MiB, Rate: 200, Limit: 3 * units.MiB}
	runFor(t, s, 120*time.Millisecond)
	if s.Resident() == 0 {
		t.Error("nothing leaked")
	}
	if s.Resident() > uint64(3*units.MiB) {
		t.Errorf("leak %d exceeded limit", s.Resident())
	}
	if err := (&MemLeak{}).Run(context.Background()); err == nil {
		t.Error("expected limit validation error")
	}
}

func TestNetOccupyLoopback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &NetOccupySink{Listener: ln}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sink.Run(ctx) }()

	src := &NetOccupy{Addr: ln.Addr().String(), MessageSize: 64 * units.KiB}
	if err := src.Run(ctx); err != nil && err != context.DeadlineExceeded {
		t.Fatalf("sender: %v", err)
	}
	<-done
	if src.Bytes() == 0 {
		t.Error("nothing sent")
	}
	if sink.Bytes() == 0 {
		t.Error("nothing received")
	}
	if err := (&NetOccupy{}).Run(context.Background()); err == nil {
		t.Error("expected address validation error")
	}
	if err := (&NetOccupySink{}).Run(context.Background()); err == nil {
		t.Error("expected listener validation error")
	}
}

func TestIOMetadata(t *testing.T) {
	dir := t.TempDir()
	s := &IOMetadata{Dir: dir, NTasks: 2}
	runFor(t, s, 80*time.Millisecond)
	if s.Ops() == 0 {
		t.Error("no metadata ops")
	}
	// Workers clean up on exit.
	left, _ := filepath.Glob(filepath.Join(dir, "hpas-meta-*"))
	if len(left) != 0 {
		t.Errorf("%d files left behind", len(left))
	}
	if err := (&IOMetadata{}).Run(context.Background()); err == nil {
		t.Error("expected dir validation error")
	}
}

func TestIOMetadataRateLimited(t *testing.T) {
	s := &IOMetadata{Dir: t.TempDir(), Rate: 50}
	runFor(t, s, 100*time.Millisecond)
	if s.Ops() > 20 {
		t.Errorf("rate limit ignored: %d ops in 100ms at 50/s", s.Ops())
	}
}

func TestIOBandwidth(t *testing.T) {
	dir := t.TempDir()
	s := &IOBandwidth{Dir: dir, FileSize: 256 * units.KiB}
	runFor(t, s, 100*time.Millisecond)
	if s.Bytes() == 0 {
		t.Error("no bytes copied")
	}
	left, _ := filepath.Glob(filepath.Join(dir, "hpas-bw-*"))
	if len(left) != 0 {
		t.Errorf("%d files left behind", len(left))
	}
	if err := (&IOBandwidth{}).Run(context.Background()); err == nil {
		t.Error("expected dir validation error")
	}
}

func TestIOBandwidthBadDir(t *testing.T) {
	s := &IOBandwidth{Dir: filepath.Join(os.TempDir(), "hpas-definitely-missing-dir-xyz"), FileSize: units.KiB}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Run(ctx); err == nil || err == context.DeadlineExceeded {
		t.Error("expected write error for missing directory")
	}
}

func TestScheduledWindow(t *testing.T) {
	inner := &CPUOccupy{Utilization: 100}
	s := &Scheduled{Inner: inner, Start: 40 * time.Millisecond, Duration: 50 * time.Millisecond}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatalf("scheduled run: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 85*time.Millisecond {
		t.Errorf("window finished too early: %v", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("window overran: %v", elapsed)
	}
	if inner.Iterations() == 0 {
		t.Error("inner stressor never ran")
	}
	if s.Name() != "cpuoccupy" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestScheduledCancelDuringDelay(t *testing.T) {
	s := &Scheduled{Inner: &CPUOccupy{Utilization: 100}, Start: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Run(ctx); err != context.DeadlineExceeded {
		t.Errorf("err = %v, want outer deadline", err)
	}
}

func TestScheduledValidation(t *testing.T) {
	if err := (&Scheduled{}).Run(context.Background()); err == nil {
		t.Error("missing inner stressor should error")
	}
	if (&Scheduled{}).Name() != "scheduled" {
		t.Error("fallback name wrong")
	}
}
