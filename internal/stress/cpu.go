package stress

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// CPUOccupy is the cpuoccupy stressor: arithmetic on registers with a
// duty-cycled sleep so that each worker consumes Utilization percent of
// one CPU, with negligible cache and memory footprint.
type CPUOccupy struct {
	// Utilization is the target CPU percentage per worker, 0..100.
	Utilization float64
	// Workers is the number of parallel busy loops (default 1).
	Workers int

	iterations uint64
	sink       uint64
}

// Name implements Stressor.
func (s *CPUOccupy) Name() string { return "cpuoccupy" }

// Run implements Stressor.
func (s *CPUOccupy) Run(ctx context.Context) error {
	if s.Utilization < 0 || s.Utilization > 100 {
		return fmt.Errorf("cpuoccupy: utilization %v out of [0,100]", s.Utilization)
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > 8*runtime.NumCPU() {
		return fmt.Errorf("cpuoccupy: %d workers is unreasonable for %d CPUs", workers, runtime.NumCPU())
	}
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			errc <- dutyCycle(ctx, s.Utilization/100, func(busy time.Duration) {
				spin(busy, &s.sink)
				s.addIterations(1)
			})
		}()
	}
	var err error
	for w := 0; w < workers; w++ {
		if e := <-errc; e != nil && err == nil {
			err = e
		}
	}
	return err
}

func (s *CPUOccupy) addIterations(n uint64) { atomicAdd(&s.iterations, n) }

// Iterations returns the number of completed busy bursts.
func (s *CPUOccupy) Iterations() uint64 { return atomicLoad(&s.iterations) }
