// Package report renders experiment results as plain-text tables and bar
// charts, so every paper figure can be regenerated on a terminal.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		rule := make([]string, cols)
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		line(rule)
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders labelled horizontal bars scaled to the maximum value.
type BarChart struct {
	Title string
	Unit  string
	Bars  []Bar
	Width int // bar width in characters (default 40)
}

// Add appends a bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var maxV float64
	labelW := 0
	for _, b := range c.Bars {
		if b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := 0
		if maxV > 0 {
			n = int(b.Value / maxV * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s |%-*s %.4g %s\n",
			labelW, b.Label, width, strings.Repeat("#", n), b.Value, c.Unit)
	}
	return sb.String()
}

// Matrix renders a row-normalized matrix (e.g. a confusion matrix) with
// two-decimal cells.
func Matrix(title string, rowLabels, colLabels []string, rows [][]float64) string {
	t := Table{Title: title, Headers: append([]string{""}, colLabels...)}
	for i, r := range rows {
		cells := []string{rowLabels[i]}
		for _, v := range r {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Lines renders one or more named series as aligned columns over a
// shared x axis, a terminal substitute for the paper's line plots.
func Lines(title, xLabel string, xs []float64, series map[string][]float64, order []string) string {
	t := Table{Title: title, Headers: append([]string{xLabel}, order...)}
	for i, x := range xs {
		cells := []string{fmt.Sprintf("%g", x)}
		for _, name := range order {
			ys := series[name]
			if i < len(ys) {
				cells = append(cells, fmt.Sprintf("%.4g", ys[i]))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}
