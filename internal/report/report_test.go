package report

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("x", "y")
	tbl.AddRow("longer", "z")
	out := tbl.String()
	if !strings.HasPrefix(out, "T\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "longer") || !strings.Contains(out, "--") {
		t.Error("content missing")
	}
	// Columns align: header and row start of column 2 match.
	hIdx := strings.Index(lines[1], "bb")
	rIdx := strings.Index(lines[4], "z")
	if hIdx != rIdx {
		t.Errorf("column misaligned: %d vs %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableMoreCellsThanHeaders(t *testing.T) {
	tbl := Table{Headers: []string{"a"}}
	tbl.AddRow("x", "extra")
	if !strings.Contains(tbl.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestBarChart(t *testing.T) {
	c := BarChart{Title: "bars", Unit: "u", Width: 10}
	c.Add("one", 5)
	c.Add("two", 10)
	out := c.String()
	if !strings.Contains(out, "bars") || !strings.Contains(out, "u") {
		t.Error("title/unit missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[1]) != 5 || count(lines[2]) != 10 {
		t.Errorf("bar lengths wrong: %d, %d", count(lines[1]), count(lines[2]))
	}
}

func TestBarChartZeroMax(t *testing.T) {
	c := BarChart{}
	c.Add("zero", 0)
	if strings.Count(c.String(), "#") != 0 {
		t.Error("zero-valued chart should have empty bars")
	}
}

func TestMatrix(t *testing.T) {
	out := Matrix("M", []string{"r1", "r2"}, []string{"c1", "c2"},
		[][]float64{{1, 0}, {0.25, 0.75}})
	for _, want := range []string{"M", "r1", "c2", "1.00", "0.25", "0.75"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
}

func TestLines(t *testing.T) {
	out := Lines("L", "x", []float64{1, 2},
		map[string][]float64{"s": {10, 20}, "t": {30}},
		[]string{"s", "t"})
	for _, want := range []string{"L", "x", "10", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("lines missing %q:\n%s", want, out)
		}
	}
	// Short series render a placeholder.
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for short series")
	}
}
