// Package anomaly implements the eight HPAS synthetic anomalies as
// simulated processes (node.Proc), mirroring Table 1 of the paper:
//
//	cpuoccupy    CPU-intensive process     knob: utilization%
//	cachecopy    cache contention          knobs: level, multiplier, rate
//	membw        memory bandwidth          knobs: buffer size, rate
//	memeater     memory-intensive process  knobs: buffer size, rate
//	memleak      memory leak               knobs: buffer size, rate
//	netoccupy    network contention        knobs: message size, rate
//	iometadata   metadata server stress    knobs: rate, ntasks
//	iobandwidth  I/O bandwidth stress      knobs: file size, ntasks
//
// Every anomaly has a configurable start and end time (Window) and an
// intensity knob, exactly as the paper's userspace generators do. The
// real-host counterparts live in internal/stress; this package produces
// the same contention inside the simulator.
package anomaly

import (
	"math"

	"hpas/internal/netsim"
	"hpas/internal/node"
	"hpas/internal/storage"
	"hpas/internal/units"
)

// Window bounds an anomaly's activity in simulation time. A zero End
// means "until the simulation stops".
type Window struct {
	Start float64
	End   float64
}

// Active reports whether the window covers time now.
func (w Window) Active(now float64) bool {
	return now >= w.Start && (w.End <= 0 || now < w.End)
}

// Expired reports whether the window has closed.
func (w Window) Expired(now float64) bool {
	return w.End > 0 && now >= w.End
}

// CPUOccupy models the cpuoccupy anomaly: arithmetic on registers with a
// duty-cycled sleep, consuming a configurable percentage of one CPU with
// negligible cache and memory footprint.
type CPUOccupy struct {
	Window
	Utilization float64 // percent of one CPU, 0..100
	killed      bool
}

// NewCPUOccupy returns a cpuoccupy anomaly at the given utilization%.
func NewCPUOccupy(utilization float64) *CPUOccupy {
	return &CPUOccupy{Utilization: units.Percent(utilization)}
}

// Name implements node.Proc.
func (a *CPUOccupy) Name() string { return "cpuoccupy" }

// Done implements node.Proc.
func (a *CPUOccupy) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *CPUOccupy) Demand(now float64) node.Demand {
	if !a.Active(now) {
		return node.Demand{}
	}
	return node.Demand{
		CPU:        a.Utilization / 100,
		WorkingSet: 8 * units.KiB,
		APKI:       1,
		Resident:   2 * units.MiB,
	}
}

// Advance implements node.Proc.
func (a *CPUOccupy) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	ips := g.EffIPS(0, 1)
	return node.Usage{
		Instructions: ips * dt,
		CPUSeconds:   g.CPUShare * dt,
	}
}

// CacheLevel selects the target of cachecopy.
type CacheLevel int

// Cache levels addressable by cachecopy.
const (
	L1 CacheLevel = 1
	L2 CacheLevel = 2
	L3 CacheLevel = 3
)

// CacheCopy models the cachecopy anomaly: two arrays, each half the size
// of the chosen cache level (scaled by Multiplier), copied back and forth
// so the target level is fully utilized.
type CacheCopy struct {
	Window
	Level      CacheLevel
	Multiplier float64 // working-set scale, default 1
	Rate       float64 // duty cycle 0..1, default 1
	spec       node.MachineSpec
	killed     bool
}

// NewCacheCopy returns a cachecopy anomaly targeting the given level of
// the given machine's hierarchy.
func NewCacheCopy(spec node.MachineSpec, level CacheLevel) *CacheCopy {
	return &CacheCopy{Level: level, Multiplier: 1, Rate: 1, spec: spec}
}

// WorkingSet returns the total size of the two copy arrays.
func (a *CacheCopy) WorkingSet() units.ByteSize {
	var base units.ByteSize
	switch a.Level {
	case L1:
		base = a.spec.L1
	case L2:
		base = a.spec.L2
	default:
		base = a.spec.L3
	}
	m := a.Multiplier
	if m <= 0 {
		m = 1
	}
	return units.ByteSize(float64(base) * m)
}

// Name implements node.Proc.
func (a *CacheCopy) Name() string { return "cachecopy" }

// Done implements node.Proc.
func (a *CacheCopy) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *CacheCopy) Demand(now float64) node.Demand {
	if !a.Active(now) {
		return node.Demand{}
	}
	rate := a.Rate
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	ws := a.WorkingSet()
	return node.Demand{
		CPU:        rate,
		WorkingSet: ws,
		APKI:       300, // a copy loop is almost all loads/stores
		Resident:   ws + 2*units.MiB,
	}
}

// Advance implements node.Proc.
func (a *CacheCopy) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	ips := g.EffIPS(0, 300)
	accesses := ips * 300 / 1000
	return node.Usage{
		Instructions: ips * dt,
		CPUSeconds:   g.CPUShare * dt,
		L2Misses:     accesses * (1 - g.CovL2) * dt,
		L3Misses:     accesses * (1 - g.CovL3) * dt,
		MemBytes:     accesses * (1 - g.CovL3) * node.CacheLine * dt,
	}
}

// MemBW models the membw anomaly: non-temporal (cache-bypassing) matrix
// transposes that saturate memory bandwidth while leaving the caches
// almost untouched. Because the stores carry the non-temporal hint they
// do not appear in cache-miss counters — the monitoring blind spot the
// paper calls out.
type MemBW struct {
	Window
	BufferSize units.ByteSize // working buffer (stack matrices)
	Rate       float64        // duty cycle 0..1, default 1
	StreamBW   float64        // bytes/s demanded at full duty, default 18 GB/s
	killed     bool
}

// NewMemBW returns a membw anomaly with default knobs.
func NewMemBW() *MemBW {
	return &MemBW{BufferSize: 16 * units.MiB, Rate: 1, StreamBW: 18e9}
}

// Name implements node.Proc.
func (a *MemBW) Name() string { return "membw" }

// Done implements node.Proc.
func (a *MemBW) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *MemBW) Demand(now float64) node.Demand {
	if !a.Active(now) {
		return node.Demand{}
	}
	rate := a.Rate
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	bw := a.StreamBW
	if bw <= 0 {
		bw = 18e9
	}
	return node.Demand{
		CPU:        rate,
		WorkingSet: 64 * units.KiB, // NT stores bypass the cache
		APKI:       2,
		StreamBW:   bw * rate,
		Resident:   a.BufferSize + 2*units.MiB,
	}
}

// Advance implements node.Proc.
func (a *MemBW) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	d := a.Demand(now)
	moved := d.StreamBW * g.BWFrac * g.CPUEff() * dt
	return node.Usage{
		Instructions: g.EffIPS(0, 2) * dt,
		CPUSeconds:   g.CPUShare * dt,
		MemBytes:     moved,
	}
}

// MemEater models the memeater anomaly: it allocates a buffer, fills it
// with random values, and keeps re-touching it; the footprint ramps to
// Limit during the first RampTime seconds and then stays flat.
type MemEater struct {
	Window
	ChunkSize units.ByteSize // per-realloc growth (paper default 35 MB)
	Limit     units.ByteSize // final footprint
	Rate      float64        // realloc+fill iterations per second
	killed    bool
}

// NewMemEater returns a memeater growing in 35 MiB steps to limit.
func NewMemEater(limit units.ByteSize) *MemEater {
	return &MemEater{ChunkSize: 35 * units.MiB, Limit: limit, Rate: 1}
}

// resident returns the footprint at time now.
func (a *MemEater) resident(now float64) units.ByteSize {
	if !a.Active(now) {
		return 0
	}
	rate := a.Rate
	if rate <= 0 {
		rate = 1
	}
	grown := units.ByteSize(float64(a.ChunkSize) * (1 + rate*(now-a.Start)))
	if grown > a.Limit {
		grown = a.Limit
	}
	return grown
}

// Name implements node.Proc.
func (a *MemEater) Name() string { return "memeater" }

// Done implements node.Proc.
func (a *MemEater) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *MemEater) Demand(now float64) node.Demand {
	res := a.resident(now)
	if res == 0 {
		return node.Demand{}
	}
	// Filling pages sequentially streams through the cache: the hot set
	// stays small and the generator sleeps between iterations, so the
	// CPU and cache footprint is minor (the paper's Figure 8 shows no
	// visible slowdown from memeater on any application).
	return node.Demand{
		CPU:        0.04,
		WorkingSet: 128 * units.KiB,
		APKI:       150,
		Resident:   res,
	}
}

// Advance implements node.Proc.
func (a *MemEater) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	ips := g.EffIPS(0, 120)
	accesses := ips * 120 / 1000
	return node.Usage{
		Instructions: ips * dt,
		CPUSeconds:   g.CPUShare * dt,
		L2Misses:     accesses * (1 - g.CovL2) * dt,
		L3Misses:     accesses * (1 - g.CovL3) * dt,
		MemBytes:     accesses * (1 - g.CovL3) * node.CacheLine * dt,
	}
}

// MemLeak models the memleak anomaly: every iteration allocates a fresh
// buffer, fills it, and forgets the pointer, so the footprint grows
// without bound until the OOM killer intervenes or the window closes.
type MemLeak struct {
	Window
	ChunkSize units.ByteSize // per-iteration allocation (paper default 20 MB)
	Rate      float64        // iterations per second
	Limit     units.ByteSize // optional growth cap (0 = unbounded)
	killed    bool
}

// NewMemLeak returns a memleak allocating 20 MiB chunks at the given
// iteration rate.
func NewMemLeak(rate float64) *MemLeak {
	return &MemLeak{ChunkSize: 20 * units.MiB, Rate: rate}
}

// resident returns the leaked footprint at time now.
func (a *MemLeak) resident(now float64) units.ByteSize {
	if now < a.Start {
		return 0
	}
	end := now
	if a.End > 0 && end > a.End {
		end = a.End
	}
	rate := a.Rate
	if rate <= 0 {
		rate = 1
	}
	leaked := units.ByteSize(float64(a.ChunkSize) * rate * (end - a.Start))
	if a.Limit > 0 && leaked > a.Limit {
		leaked = a.Limit
	}
	return leaked
}

// Name implements node.Proc.
func (a *MemLeak) Name() string { return "memleak" }

// Done implements node.Proc.
func (a *MemLeak) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *MemLeak) Demand(now float64) node.Demand {
	if !a.Active(now) {
		return node.Demand{}
	}
	// Only the freshly filled chunk is touched, sequentially, and the
	// generator sleeps between iterations: low CPU, tiny hot set.
	return node.Demand{
		CPU:        0.02,
		WorkingSet: 64 * units.KiB,
		APKI:       150,
		Resident:   a.resident(now),
	}
}

// Advance implements node.Proc.
func (a *MemLeak) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	ips := g.EffIPS(0, 120)
	accesses := ips * 120 / 1000
	return node.Usage{
		Instructions: ips * dt,
		CPUSeconds:   g.CPUShare * dt,
		L2Misses:     accesses * (1 - g.CovL2) * dt,
		L3Misses:     accesses * (1 - g.CovL3) * dt,
		MemBytes:     accesses * (1 - g.CovL3) * node.CacheLine * dt,
	}
}

// NetOccupy models one side of the netoccupy anomaly: a rank that
// streams large messages (default 100 MB) to its paired rank on another
// node via shmem_putmem-style puts.
type NetOccupy struct {
	Window
	SrcNode, DstNode int
	MessageSize      units.ByteSize // default 100 MB
	Rate             float64        // messages/s; 0 = as fast as possible
	flow             netsim.Flow
	killed           bool
}

// NewNetOccupy returns a netoccupy instance streaming from src to dst.
func NewNetOccupy(srcNode, dstNode int) *NetOccupy {
	return &NetOccupy{SrcNode: srcNode, DstNode: dstNode, MessageSize: 100 * units.MiB}
}

// Name implements node.Proc.
func (a *NetOccupy) Name() string { return "netoccupy" }

// Done implements node.Proc.
func (a *NetOccupy) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *NetOccupy) Demand(now float64) node.Demand {
	if !a.Active(now) {
		return node.Demand{}
	}
	return node.Demand{
		CPU:        0.3, // the NIC does the heavy lifting
		WorkingSet: a.MessageSize,
		APKI:       10,
		Resident:   2 * a.MessageSize,
	}
}

// Flows implements cluster.FlowSource.
func (a *NetOccupy) Flows(now float64) []*netsim.Flow {
	if !a.Active(now) {
		return nil
	}
	demand := math.Inf(1)
	if a.Rate > 0 {
		demand = float64(a.MessageSize) * a.Rate
	}
	a.flow = netsim.Flow{Src: a.SrcNode, Dst: a.DstNode, Demand: demand}
	return []*netsim.Flow{&a.flow}
}

// Granted returns the bytes/s the anomaly achieved last tick.
func (a *NetOccupy) Granted() float64 { return a.flow.Granted }

// Advance implements node.Proc.
func (a *NetOccupy) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	return node.Usage{
		Instructions: g.EffIPS(2e8, 10) * dt,
		CPUSeconds:   g.CPUShare * dt,
	}
}

// IOMetadata models the iometadata anomaly: create, write one byte,
// close, and delete files in a loop, hammering the metadata service.
type IOMetadata struct {
	Window
	Rate   float64 // metadata ops/s offered per task
	NTasks int     // concurrent tasks in this instance
	grant  storage.Grant
	killed bool
}

// NewIOMetadata returns an iometadata instance issuing rate ops/s.
func NewIOMetadata(rate float64, ntasks int) *IOMetadata {
	if ntasks <= 0 {
		ntasks = 1
	}
	return &IOMetadata{Rate: rate, NTasks: ntasks}
}

// Name implements node.Proc.
func (a *IOMetadata) Name() string { return "iometadata" }

// Done implements node.Proc.
func (a *IOMetadata) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *IOMetadata) Demand(now float64) node.Demand {
	if !a.Active(now) {
		return node.Demand{}
	}
	return node.Demand{CPU: 0.1 * float64(a.NTasks), Resident: 4 * units.MiB}
}

// IODemand implements cluster.Client. Each create/write/close/delete
// cycle is 4 metadata ops plus a one-byte write.
func (a *IOMetadata) IODemand(now float64) storage.Demand {
	if !a.Active(now) {
		return storage.Demand{}
	}
	ops := a.Rate * float64(a.NTasks)
	return storage.Demand{MetaOps: ops, Write: ops} // 1 byte per op
}

// IOGrant implements cluster.Client.
func (a *IOMetadata) IOGrant(g storage.Grant) { a.grant = g }

// ServedOps returns the metadata ops/s achieved last tick.
func (a *IOMetadata) ServedOps() float64 { return a.grant.MetaOps }

// Advance implements node.Proc.
func (a *IOMetadata) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	return node.Usage{CPUSeconds: g.CPUShare * dt}
}

// IOBandwidth models the iobandwidth anomaly: dd-style copies of a file
// to another file, streaming reads and writes through the storage server.
type IOBandwidth struct {
	Window
	FileSize units.ByteSize // copied file size (sets the demand pattern)
	NTasks   int
	RatePer  float64 // offered bytes/s per task, default 50 MB/s
	grant    storage.Grant
	killed   bool
}

// NewIOBandwidth returns an iobandwidth instance with ntasks dd loops.
func NewIOBandwidth(fileSize units.ByteSize, ntasks int) *IOBandwidth {
	if ntasks <= 0 {
		ntasks = 1
	}
	return &IOBandwidth{FileSize: fileSize, NTasks: ntasks, RatePer: 50e6}
}

// Name implements node.Proc.
func (a *IOBandwidth) Name() string { return "iobandwidth" }

// Done implements node.Proc.
func (a *IOBandwidth) Done() bool { return a.killed }

// Demand implements node.Proc.
func (a *IOBandwidth) Demand(now float64) node.Demand {
	if !a.Active(now) {
		return node.Demand{}
	}
	return node.Demand{CPU: 0.05 * float64(a.NTasks), Resident: a.FileSize}
}

// IODemand implements cluster.Client. A dd copy reads and writes the
// same byte count.
func (a *IOBandwidth) IODemand(now float64) storage.Demand {
	if !a.Active(now) {
		return storage.Demand{}
	}
	per := a.RatePer
	if per <= 0 {
		per = 50e6
	}
	bw := per * float64(a.NTasks)
	return storage.Demand{Read: bw / 2, Write: bw / 2, MetaOps: float64(a.NTasks)}
}

// IOGrant implements cluster.Client.
func (a *IOBandwidth) IOGrant(g storage.Grant) { a.grant = g }

// ServedBW returns the read+write bytes/s achieved last tick.
func (a *IOBandwidth) ServedBW() float64 { return a.grant.Read + a.grant.Write }

// Advance implements node.Proc.
func (a *IOBandwidth) Advance(now, dt float64, g node.Grant) node.Usage {
	if g.OOMKilled {
		a.killed = true
	}
	if !a.Active(now) {
		a.killed = a.killed || a.Expired(now)
		return node.Usage{}
	}
	return node.Usage{CPUSeconds: g.CPUShare * dt}
}
