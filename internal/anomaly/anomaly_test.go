package anomaly

import (
	"math"
	"testing"
	"testing/quick"

	"hpas/internal/cluster"
	"hpas/internal/node"
	"hpas/internal/sim"
	"hpas/internal/units"
	"hpas/internal/xrand"
)

func newNode() *node.Node { return node.New(0, node.Voltrino(), xrand.New(1)) }

func TestWindow(t *testing.T) {
	w := Window{Start: 10, End: 20}
	if w.Active(5) || !w.Active(10) || !w.Active(19.9) || w.Active(20) {
		t.Error("Window.Active wrong")
	}
	if w.Expired(19) || !w.Expired(20) {
		t.Error("Window.Expired wrong")
	}
	forever := Window{Start: 0}
	if !forever.Active(1e9) || forever.Expired(1e9) {
		t.Error("open window wrong")
	}
}

func TestCPUOccupyUtilization(t *testing.T) {
	for _, u := range []float64{10, 50, 100} {
		n := newNode()
		a := NewCPUOccupy(u)
		n.Place(a, 0)
		for i := 0; i < 100; i++ {
			n.Tick(float64(i)*0.1, 0.1)
		}
		got := n.Counters().UserSeconds / 10 * 100 // percent of one CPU
		if math.Abs(got-u) > 0.5 {
			t.Errorf("utilization %v: measured %v", u, got)
		}
	}
}

func TestCPUOccupyClampsUtilization(t *testing.T) {
	a := NewCPUOccupy(250)
	if a.Utilization != 100 {
		t.Errorf("Utilization = %v, want clamped 100", a.Utilization)
	}
}

func TestCPUOccupyWindow(t *testing.T) {
	n := newNode()
	a := NewCPUOccupy(100)
	a.Window = Window{Start: 1, End: 2}
	n.Place(a, 0)
	n.Tick(0, 0.1)
	if n.Counters().UserSeconds != 0 {
		t.Error("anomaly ran before its window")
	}
	for i := 10; i < 25; i++ {
		n.Tick(float64(i)*0.1, 0.1)
	}
	if !a.Done() {
		t.Error("anomaly should be done after its window")
	}
	user := n.Counters().UserSeconds
	if math.Abs(user-1.0) > 0.11 {
		t.Errorf("user seconds = %v, want ~1.0 (1s window)", user)
	}
}

func TestCacheCopyWorkingSet(t *testing.T) {
	spec := node.Voltrino()
	for _, c := range []struct {
		level CacheLevel
		want  units.ByteSize
	}{{L1, spec.L1}, {L2, spec.L2}, {L3, spec.L3}} {
		a := NewCacheCopy(spec, c.level)
		if a.WorkingSet() != c.want {
			t.Errorf("level %d ws = %v, want %v", c.level, a.WorkingSet(), c.want)
		}
	}
	a := NewCacheCopy(spec, L2)
	a.Multiplier = 2
	if a.WorkingSet() != 2*spec.L2 {
		t.Error("multiplier not applied")
	}
}

func TestCacheCopyEvictsSharingProc(t *testing.T) {
	// A victim with an L2-sized working set shares a physical core with
	// cachecopy targeting L2: its L2 coverage must drop.
	runVictim := func(withAnomaly bool) float64 {
		n := newNode()
		victim := &probe{demand: node.Demand{CPU: 1, WorkingSet: n.Spec.L2 / 2, APKI: 100}}
		n.Place(victim, 0)
		if withAnomaly {
			n.Place(NewCacheCopy(n.Spec, L2), 32) // SMT sibling
		}
		n.Tick(0, 0.1)
		return victim.last.CovL2
	}
	clean := runVictim(false)
	dirty := runVictim(true)
	if clean != 1 {
		t.Errorf("clean CovL2 = %v, want 1", clean)
	}
	if dirty >= clean {
		t.Errorf("cachecopy did not evict: CovL2 %v >= %v", dirty, clean)
	}
}

func TestMemBWConsumesBandwidthNotCache(t *testing.T) {
	n := newNode()
	victim := &probe{demand: node.Demand{CPU: 1, WorkingSet: 100 * units.KiB, APKI: 100, StreamBW: 13e9}}
	n.Place(victim, 0)
	for i := 1; i <= 15; i++ {
		n.Place(NewMemBW(), i) // other cores, same socket
	}
	n.Tick(0, 0.1)
	if victim.last.BWFrac >= 0.5 {
		t.Errorf("membw x15 should throttle bandwidth hard, BWFrac = %v", victim.last.BWFrac)
	}
	if victim.last.CovL2 < 1 {
		t.Errorf("membw should not consume cache, CovL2 = %v", victim.last.CovL2)
	}
}

func TestMemEaterFlatFootprint(t *testing.T) {
	a := NewMemEater(3 * units.GiB)
	a.Rate = 2
	early := a.resident(1)
	mid := a.resident(50)
	late := a.resident(500)
	if early >= mid {
		t.Error("memeater should ramp up")
	}
	if mid != 3*units.GiB || late != 3*units.GiB {
		t.Errorf("memeater should plateau at limit: %v, %v", mid, late)
	}
}

func TestMemLeakGrowsLinearly(t *testing.T) {
	a := NewMemLeak(1) // 20 MiB/s
	r100 := a.resident(100)
	r200 := a.resident(200)
	if r100 != 100*20*units.MiB {
		t.Errorf("resident(100) = %v", r100)
	}
	if r200 != 2*r100 {
		t.Error("leak not linear")
	}
	// Growth stops when the window closes.
	a.End = 150
	if a.resident(200) != a.resident(150) {
		t.Error("leak should stop at window end")
	}
}

func TestMemLeakOOMKilled(t *testing.T) {
	n := newNode()
	a := NewMemLeak(1)
	a.ChunkSize = 10 * units.GiB // leak 10 GiB/s
	n.Place(a, 0)
	e := sim.New(0.1)
	e.Add(sim.TickerFunc(n.Tick))
	at, ok := e.RunUntil(a.Done, 60)
	if !ok {
		t.Fatal("leak never OOM-killed")
	}
	if at < 5 || at > 30 {
		t.Errorf("OOM at %v s, expected ~12 s for 125 GiB", at)
	}
	if n.Counters().OOMKills != 1 {
		t.Error("OOM kill not counted")
	}
}

func TestNetOccupyFlows(t *testing.T) {
	c := cluster.New(cluster.Voltrino(8))
	a := NewNetOccupy(0, 4)
	c.Place(a, 0, 0)
	c.Tick(0, 0.1)
	if a.Granted() <= 0 {
		t.Error("netoccupy got no bandwidth")
	}
	// Rate-limited variant.
	b := NewNetOccupy(1, 5)
	b.Rate = 2 // 2 msg/s of 100 MiB
	flows := b.Flows(0)
	if len(flows) != 1 {
		t.Fatal("expected one flow")
	}
	want := 2 * float64(100*units.MiB)
	if math.Abs(flows[0].Demand-want) > 1 {
		t.Errorf("rate-limited demand = %v, want %v", flows[0].Demand, want)
	}
	// Inactive window produces no flows.
	b.Window = Window{Start: 100}
	if b.Flows(0) != nil {
		t.Error("inactive netoccupy should not inject")
	}
}

func TestIOMetadataLoadsMDS(t *testing.T) {
	c := cluster.New(cluster.ChameleonCloud(6))
	a := NewIOMetadata(100, 48)
	c.Place(a, 0, 0)
	c.Tick(0, 0.1)
	if a.ServedOps() <= 0 {
		t.Error("iometadata served no ops")
	}
	d := a.IODemand(0)
	if d.MetaOps != 4800 {
		t.Errorf("MetaOps demand = %v", d.MetaOps)
	}
}

func TestIOBandwidthLoadsDisk(t *testing.T) {
	c := cluster.New(cluster.ChameleonCloud(6))
	a := NewIOBandwidth(1*units.GiB, 48)
	c.Place(a, 0, 0)
	c.Tick(0, 0.1)
	if a.ServedBW() <= 0 {
		t.Error("iobandwidth served nothing")
	}
	d := a.IODemand(0)
	if d.Read != d.Write || d.Read <= 0 {
		t.Errorf("dd copy should demand symmetric read/write: %+v", d)
	}
}

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d anomalies, want 8", len(cat))
	}
	want := []string{"cpuoccupy", "cachecopy", "membw", "memeater",
		"memleak", "netoccupy", "iometadata", "iobandwidth"}
	names := Names()
	for i, w := range want {
		if names[i] != w {
			t.Errorf("catalog[%d] = %s, want %s", i, names[i], w)
		}
	}
	for _, info := range cat {
		if info.Type == "" || info.Behavior == "" || len(info.Knobs) == 0 {
			t.Errorf("incomplete catalog entry: %+v", info)
		}
	}
}

// Property: no anomaly demands resources outside its window.
func TestInactiveOutsideWindowProperty(t *testing.T) {
	spec := node.Voltrino()
	mk := func(w Window) []node.Proc {
		cc := NewCacheCopy(spec, L3)
		cc.Window = w
		mb := NewMemBW()
		mb.Window = w
		me := NewMemEater(units.GiB)
		me.Window = w
		ml := NewMemLeak(1)
		ml.Window = w
		co := NewCPUOccupy(80)
		co.Window = w
		im := NewIOMetadata(10, 1)
		im.Window = w
		ib := NewIOBandwidth(units.GiB, 1)
		ib.Window = w
		no := NewNetOccupy(0, 1)
		no.Window = w
		return []node.Proc{cc, mb, me, ml, co, im, ib, no}
	}
	f := func(startRaw, lenRaw, probeRaw uint8) bool {
		w := Window{Start: float64(startRaw), End: float64(startRaw) + float64(lenRaw%100) + 1}
		now := float64(probeRaw) * 2
		for _, p := range mk(w) {
			d := p.Demand(now)
			if !w.Active(now) {
				if d.CPU != 0 || d.StreamBW != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// probe is a minimal victim process recording its last grant.
type probe struct {
	demand node.Demand
	last   node.Grant
}

func (p *probe) Name() string                   { return "probe" }
func (p *probe) Done() bool                     { return false }
func (p *probe) Demand(now float64) node.Demand { return p.demand }
func (p *probe) Advance(now, dt float64, g node.Grant) node.Usage {
	p.last = g
	return node.Usage{CPUSeconds: g.CPUShare * dt}
}
