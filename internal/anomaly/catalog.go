package anomaly

// Info describes one anomaly generator, reproducing a row of Table 1.
type Info struct {
	Type     string // anomaly type, e.g. "CPU intensive process"
	Name     string // generator name, e.g. "cpuoccupy"
	Behavior string // one-line behaviour summary
	Knobs    []string
}

// Catalog returns the full Table 1 of the paper: every anomaly, its
// behaviour, and its runtime configuration options. Every anomaly also
// has configurable start/end times (Window).
func Catalog() []Info {
	return []Info{
		{
			Type:     "CPU intensive process",
			Name:     "cpuoccupy",
			Behavior: "Arithmetic operations",
			Knobs:    []string{"utilization%"},
		},
		{
			Type:     "Cache contention",
			Name:     "cachecopy",
			Behavior: "Cache read & write",
			Knobs:    []string{"cache (L1/L2/L3)", "multiplier", "rate"},
		},
		{
			Type:     "Memory bandwidth contention",
			Name:     "membw",
			Behavior: "Not-cached memory write",
			Knobs:    []string{"buffer size", "rate"},
		},
		{
			Type:     "Memory intensive process",
			Name:     "memeater",
			Behavior: "Allocate, fill, & release memory",
			Knobs:    []string{"buffer size", "rate"},
		},
		{
			Type:     "Memory leak",
			Name:     "memleak",
			Behavior: "Increasingly allocate & fill memory",
			Knobs:    []string{"buffer size", "rate"},
		},
		{
			Type:     "Network contention",
			Name:     "netoccupy",
			Behavior: "Send messages between two nodes",
			Knobs:    []string{"message size", "rate", "ntasks"},
		},
		{
			Type:     "I/O metadata server contention",
			Name:     "iometadata",
			Behavior: "File creation & deletion",
			Knobs:    []string{"rate", "ntasks"},
		},
		{
			Type:     "I/O bandwidth contention",
			Name:     "iobandwidth",
			Behavior: "File read & write",
			Knobs:    []string{"file size", "ntasks"},
		},
	}
}

// Names returns the generator names in Table 1 order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, a := range cat {
		out[i] = a.Name
	}
	return out
}
