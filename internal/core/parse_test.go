package core

import (
	"testing"

	"hpas/internal/cluster"
)

func TestParsePhases(t *testing.T) {
	phases, err := ParsePhases("cpuoccupy@10-40:90, memleak@60-90", 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("%d phases", len(phases))
	}
	p := phases[0]
	if p.Label != "cpuoccupy" || p.Start != 10 || p.Duration != 30 {
		t.Errorf("phase 0 = %+v", p)
	}
	if len(p.Specs) != 1 || p.Specs[0].Intensity != 90 || p.Specs[0].CPU != 32 {
		t.Errorf("spec 0 = %+v", p.Specs[0])
	}
	if phases[1].Specs[0].Intensity != 0 {
		t.Error("default intensity should be 0 (generator default)")
	}
}

func TestParsePhasesErrors(t *testing.T) {
	for _, in := range []string{
		"",
		",",
		"cpuoccupy",
		"cpuoccupy@10",
		"cpuoccupy@x-20",
		"cpuoccupy@10-y",
		"cpuoccupy@20-10",
		"cpuoccupy@10-20:high",
	} {
		if _, err := ParsePhases(in, 0, 0); err == nil {
			t.Errorf("ParsePhases(%q): expected error", in)
		}
	}
}

func TestParsedPhasesRunAsCampaign(t *testing.T) {
	phases, err := ParsePhases("cpuoccupy@5-15:100", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	camp := Campaign{
		Base:   RunConfig{Cluster: cluster.Voltrino(1), Seed: 2},
		Phases: phases,
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Timeline.LabelAt(10); got != "cpuoccupy" {
		t.Errorf("label at 10s = %q", got)
	}
	// The parsed anomaly really ran: node CPU was busy inside the window.
	busy := res.PhaseSeries(0, "user::procstat", "cpuoccupy")
	if busy == nil || busy.Mean() < 80 {
		t.Errorf("parsed phase did not run: %v", busy)
	}
}
