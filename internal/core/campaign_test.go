package core

import (
	"testing"

	"hpas/internal/cluster"
	"hpas/internal/monitor"
	"hpas/internal/units"
)

func TestCampaignPhasesActivateInOrder(t *testing.T) {
	c := Campaign{
		Base: RunConfig{Cluster: cluster.Voltrino(1), Seed: 3},
		Phases: []Phase{
			{Label: "cpu", Start: 5, Duration: 10,
				Specs: []Spec{{Name: "cpuoccupy", Node: 0, CPU: 0, Intensity: 100}}},
			{Label: "quiet", Start: 20, Duration: 5,
				Specs: []Spec{{Name: "cpuoccupy", Node: 0, CPU: 0, Intensity: 10}}},
		},
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration < 25 {
		t.Errorf("run too short: %v", res.Duration)
	}
	// Timeline labels.
	if got := res.Timeline.LabelAt(1); got != "" {
		t.Errorf("label at 1s = %q, want none", got)
	}
	if got := res.Timeline.LabelAt(7); got != "cpu" {
		t.Errorf("label at 7s = %q", got)
	}
	if got := res.Timeline.LabelAt(22); got != "quiet" {
		t.Errorf("label at 22s = %q", got)
	}
	if got := res.Timeline.LabelAt(1e6); got != "" {
		t.Error("out-of-range label should be empty")
	}

	// The monitored CPU reflects the phases: high during "cpu", low
	// during "quiet".
	busy := res.PhaseSeries(0, monitor.MetricUser, "cpu")
	quiet := res.PhaseSeries(0, monitor.MetricUser, "quiet")
	if busy == nil || quiet == nil {
		t.Fatal("phase series missing")
	}
	if busy.Mean() < 80 {
		t.Errorf("cpu phase user = %v, want ~100", busy.Mean())
	}
	if quiet.Mean() > 30 {
		t.Errorf("quiet phase user = %v, want ~10", quiet.Mean())
	}
	if res.PhaseSeries(0, monitor.MetricUser, "nope") != nil {
		t.Error("unknown label should return nil")
	}
}

func TestCampaignWindows(t *testing.T) {
	tl := Timeline{Period: 1, Labels: []string{"", "a", "a", "", "b", "b", "b"}}
	ws := tl.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[0].Label != "a" || ws[0].From != 1 || ws[0].To != 3 {
		t.Errorf("window a = %+v", ws[0])
	}
	if ws[1].Label != "b" || ws[1].From != 4 || ws[1].To != 7 {
		t.Errorf("window b = %+v", ws[1])
	}
}

func TestCampaignValidation(t *testing.T) {
	c := Campaign{Base: RunConfig{Cluster: cluster.Voltrino(1)}}
	if _, err := c.Run(); err == nil {
		t.Error("empty campaign should error")
	}
	c.Phases = []Phase{{Label: "x", Start: 0, Duration: 0}}
	if _, err := c.Run(); err == nil {
		t.Error("zero-duration phase should error")
	}
	c.Phases = []Phase{{Label: "x", Start: 0, Duration: 5,
		Specs: []Spec{{Name: "bogus", Node: 0}}}}
	if _, err := c.Run(); err == nil {
		t.Error("bad spec should error")
	}
}

func TestCampaignOverlapLatestWins(t *testing.T) {
	c := Campaign{
		Base: RunConfig{Cluster: cluster.Voltrino(1), Seed: 1},
		Phases: []Phase{
			{Label: "long", Start: 2, Duration: 12,
				Specs: []Spec{{Name: "cpuoccupy", Node: 0, CPU: 0, Intensity: 30}}},
			{Label: "burst", Start: 6, Duration: 3,
				Specs: []Spec{{Name: "cpuoccupy", Node: 0, CPU: 1, Intensity: 90}}},
		},
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Timeline.LabelAt(7); got != "burst" {
		t.Errorf("overlap label = %q, want burst", got)
	}
	if got := res.Timeline.LabelAt(10); got != "long" {
		t.Errorf("post-burst label = %q, want long", got)
	}
}

// TestCampaignAllAnomaliesSoak drives every Table 1 anomaly through one
// long campaign next to a running application and checks the system
// stays sane: no OOM kills (all anomalies bounded), monitoring stays
// complete, and every phase visibly perturbs its target metric.
func TestCampaignAllAnomaliesSoak(t *testing.T) {
	phases := []Phase{
		{Label: "cpuoccupy", Start: 10, Duration: 20,
			Specs: []Spec{{Name: "cpuoccupy", Node: 0, CPU: 32, Intensity: 100}}},
		{Label: "cachecopy", Start: 40, Duration: 20,
			Specs: []Spec{{Name: "cachecopy", Node: 0, CPU: 32}}},
		{Label: "membw", Start: 70, Duration: 20,
			Specs: []Spec{{Name: "membw", Node: 0, CPU: 32, Count: 2}}},
		{Label: "memeater", Start: 100, Duration: 20,
			Specs: []Spec{{Name: "memeater", Node: 0, CPU: 34, Size: 2 * units.GiB, Intensity: 20}}},
		{Label: "memleak", Start: 130, Duration: 20,
			Specs: []Spec{{Name: "memleak", Node: 0, CPU: 34, Intensity: 5}}},
		{Label: "netoccupy", Start: 160, Duration: 20,
			Specs: []Spec{{Name: "netoccupy", Node: 1, Peer: 5}}},
		{Label: "iometadata", Start: 190, Duration: 20,
			Specs: []Spec{{Name: "iometadata", Node: 2, CPU: 34, Intensity: 200, Count: 8}}},
		{Label: "iobandwidth", Start: 220, Duration: 20,
			Specs: []Spec{{Name: "iobandwidth", Node: 2, CPU: 34, Size: units.GiB, Count: 8}}},
	}
	camp := Campaign{
		Base: RunConfig{
			Cluster:      cluster.Voltrino(8),
			App:          "kripke",
			Iterations:   1 << 20,
			FixedSeconds: 250,
			Seed:         11,
		},
		Phases: phases,
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if res.Cluster.Node(i).Counters().OOMKills != 0 {
			t.Errorf("node %d suffered OOM kills during the soak", i)
		}
	}
	// Monitoring stayed complete for the whole run on every node.
	for i, set := range res.Metrics {
		if n := set.Get(monitor.MetricUser).Len(); n != 250 {
			t.Errorf("node %d has %d samples, want 250", i, n)
		}
	}
	// Spot-check that each class of phase moved its signature metric.
	cpuPhase := res.PhaseSeries(0, monitor.MetricUser, "cpuoccupy")
	baseline := res.Metrics[0].Get(monitor.MetricUser).Slice(0, 10)
	if cpuPhase.Mean() <= baseline.Mean() {
		t.Error("cpuoccupy phase did not raise user CPU")
	}
	leakPhase := res.PhaseSeries(0, monitor.MetricMemUsed, "memleak")
	if leakPhase.Max() <= leakPhase.Min() {
		t.Error("memleak phase did not grow memory")
	}
	netPhase := res.PhaseSeries(1, monitor.MetricNICFlits, "netoccupy")
	if netPhase.Mean() <= 0 {
		t.Error("netoccupy phase injected nothing")
	}
	meta, _, _ := res.Cluster.FS().Counters()
	if meta <= 0 {
		t.Error("I/O phases served no metadata ops")
	}
}
