package core

import (
	"context"
	"fmt"

	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/monitor"
	"hpas/internal/sim"
	"hpas/internal/trace"
)

// RunConfig describes one monitored experiment run: a cluster, an
// optional application, and a set of anomaly injections.
type RunConfig struct {
	// Cluster is the machine to simulate.
	Cluster cluster.Config
	// App names a Table 2 application to run (empty = none).
	App string
	// AppNodes is the job's allocation (defaults to nodes 0..3 when an
	// app is named and the cluster has at least 4 nodes).
	AppNodes []int
	// RanksPerNode defaults to all physical cores.
	RanksPerNode int
	// Iterations overrides the app profile's iteration count (0 keeps
	// the default).
	Iterations int
	// AppScale scales the app's per-rank problem size (input size);
	// 0 or 1 keeps the profile defaults.
	AppScale float64
	// Anomalies are the injections to apply.
	Anomalies []Spec
	// MaxSeconds bounds the simulated run (default 3000).
	MaxSeconds float64
	// FixedSeconds, when positive, runs for exactly this long instead
	// of waiting for the app (used for dataset windows).
	FixedSeconds float64
	// SamplePeriod is the monitoring period (default 1s).
	SamplePeriod float64
	// Noise is the monitor's relative sampling noise (default 0.01).
	Noise float64
	// MemBWCounter adds the uncore memory-bandwidth metric to the
	// monitor (off by default, as on the paper's system).
	MemBWCounter bool
	// Seed makes the run reproducible.
	Seed uint64
	// DT is the simulation step (default sim.DefaultDT).
	DT float64
	// Tap, when non-nil, receives every monitor sample as it is taken,
	// enabling online consumers (see internal/stream) to observe the run
	// while it is still in progress. Excluded from JSON so a RunConfig
	// can be journaled (see internal/stream/journal).
	Tap monitor.TapFunc `json:"-"`
}

// RunResult is the outcome of a Run.
type RunResult struct {
	// Duration is the app's completion time, or the simulated time when
	// no app was run (or it did not finish).
	Duration float64
	// Finished reports whether the app completed within MaxSeconds.
	Finished bool
	// Job is the application job, when one was run.
	Job *apps.Job
	// Metrics holds each node's monitored time series.
	Metrics []*trace.Set
	// Cluster is the simulated machine, for counter inspection.
	Cluster *cluster.Cluster
}

// Run executes one experiment and returns its result.
func Run(cfg RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the context is checked every
// simulation tick, and a cancelled run returns ctx.Err() (no partial
// result). Long simulations driven by servers or CLIs should prefer it.
func RunContext(ctx context.Context, cfg RunConfig) (*RunResult, error) {
	if cfg.Cluster.Nodes == 0 {
		return nil, fmt.Errorf("core: cluster config has no nodes")
	}
	ccfg := cfg.Cluster
	if cfg.Seed != 0 {
		ccfg.Seed = cfg.Seed
	}
	c := cluster.New(ccfg)

	dt := cfg.DT
	if dt <= 0 {
		dt = sim.DefaultDT
	}
	period := cfg.SamplePeriod
	if period <= 0 {
		period = 1
	}
	noise := cfg.Noise
	if noise == 0 {
		noise = 0.01
	}
	mon := monitor.NewWithOptions(c, period, noise, ccfg.Seed+0xa0b1,
		monitor.Options{IncludeMemBW: cfg.MemBWCounter, Tap: cfg.Tap})
	eng := sim.New(dt)
	eng.Add(c)
	eng.Add(mon)

	for _, s := range cfg.Anomalies {
		if _, err := Inject(c, s); err != nil {
			return nil, err
		}
	}

	var job *apps.Job
	if cfg.App != "" {
		profile, ok := apps.ByName(cfg.App)
		if !ok {
			return nil, fmt.Errorf("core: unknown app %q (see Table 2: %v)", cfg.App, apps.Names())
		}
		if cfg.Iterations > 0 {
			profile.Iterations = cfg.Iterations
		}
		if cfg.AppScale > 0 {
			profile = profile.Scaled(cfg.AppScale)
		}
		nodes := cfg.AppNodes
		if nodes == nil {
			n := 4
			if c.NumNodes() < n {
				n = c.NumNodes()
			}
			for i := 0; i < n; i++ {
				nodes = append(nodes, i)
			}
		}
		rpn := cfg.RanksPerNode
		if rpn <= 0 {
			rpn = ccfg.Machine.PhysCores()
		}
		job = apps.Launch(c, profile, nodes, rpn)
	}

	maxSec := cfg.MaxSeconds
	if maxSec <= 0 {
		maxSec = 3000
	}

	// cancelled is polled once per simulation tick, so aborting a run
	// costs one atomic load per 100 ms of simulated time.
	cancelled := func() bool { return ctx.Err() != nil }

	res := &RunResult{Job: job, Cluster: c}
	switch {
	case cfg.FixedSeconds > 0:
		eng.RunUntil(cancelled, cfg.FixedSeconds)
		res.Duration = eng.Now()
		res.Finished = job == nil || job.Done()
	case job != nil:
		at, ok := eng.RunUntil(func() bool { return job.Done() || cancelled() }, maxSec)
		res.Duration, res.Finished = at, ok && job.Done()
		if res.Finished {
			res.Duration = job.FinishedAt()
		}
	default:
		eng.RunUntil(cancelled, maxSec)
		res.Duration = eng.Now()
		res.Finished = true
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for i := 0; i < c.NumNodes(); i++ {
		res.Metrics = append(res.Metrics, mon.NodeSet(i))
	}
	return res, nil
}
