// Package core is the HPAS orchestration layer: it turns declarative
// anomaly specifications into processes on a simulated cluster, runs
// applications against them, and generates the labelled datasets used by
// the diagnosis use case. It is the programmatic equivalent of invoking
// the original suite's generators from a job script.
package core

import (
	"fmt"

	"hpas/internal/anomaly"
	"hpas/internal/cluster"
	"hpas/internal/node"
	"hpas/internal/units"
)

// Spec declares one anomaly injection. Name selects the generator
// (Table 1); the remaining fields map onto that generator's knobs and
// placement. Unused fields are ignored by generators that lack the knob.
type Spec struct {
	// Name is the Table 1 generator name (e.g. "cpuoccupy").
	Name string
	// Node is the target node ID.
	Node int
	// CPU is the logical CPU to pin to; -1 picks the least loaded.
	CPU int
	// Start and End bound the anomaly in simulation seconds (End 0 =
	// until the run stops).
	Start, End float64
	// Intensity is the generator's main knob: utilization% for
	// cpuoccupy, duty-cycle rate (0..1] for cachecopy/membw, iteration
	// rate for memleak/memeater, ops rate for iometadata, messages/s
	// for netoccupy. Zero selects the generator default.
	Intensity float64
	// Level targets a cache level for cachecopy (default L3).
	Level anomaly.CacheLevel
	// Size is a byte-size knob: buffer size, chunk size, limit, message
	// or file size depending on the generator.
	Size units.ByteSize
	// Limit caps memleak growth (0 = unbounded, i.e. until OOM).
	Limit units.ByteSize
	// Count instantiates this many copies (or ntasks for the I/O
	// generators). Zero means 1.
	Count int
	// Peer is the destination node for netoccupy.
	Peer int
	// StreamBW overrides membw's demanded bandwidth in bytes/s.
	StreamBW float64
}

// Inject builds the specified anomaly processes and places them on the
// cluster. It returns the created processes so callers can inspect them.
func Inject(c *cluster.Cluster, s Spec) ([]node.Proc, error) {
	if s.Node < 0 || s.Node >= c.NumNodes() {
		return nil, fmt.Errorf("core: node %d out of range", s.Node)
	}
	count := s.Count
	if count <= 0 {
		count = 1
	}
	w := anomaly.Window{Start: s.Start, End: s.End}
	var procs []node.Proc

	switch s.Name {
	case "cpuoccupy":
		util := s.Intensity
		if util <= 0 {
			util = 100
		}
		for i := 0; i < count; i++ {
			a := anomaly.NewCPUOccupy(util)
			a.Window = w
			procs = append(procs, a)
		}

	case "cachecopy":
		level := s.Level
		if level == 0 {
			level = anomaly.L3
		}
		for i := 0; i < count; i++ {
			a := anomaly.NewCacheCopy(c.Config().Machine, level)
			a.Window = w
			if s.Intensity > 0 {
				a.Rate = s.Intensity
			}
			procs = append(procs, a)
		}

	case "membw":
		for i := 0; i < count; i++ {
			a := anomaly.NewMemBW()
			a.Window = w
			if s.Intensity > 0 {
				a.Rate = s.Intensity
			}
			if s.StreamBW > 0 {
				a.StreamBW = s.StreamBW
			}
			if s.Size > 0 {
				a.BufferSize = s.Size
			}
			procs = append(procs, a)
		}

	case "memeater":
		limit := s.Size
		if limit <= 0 {
			limit = 3 * units.GiB
		}
		for i := 0; i < count; i++ {
			a := anomaly.NewMemEater(limit)
			a.Window = w
			if s.Intensity > 0 {
				a.Rate = s.Intensity
			}
			procs = append(procs, a)
		}

	case "memleak":
		rate := s.Intensity
		if rate <= 0 {
			rate = 1
		}
		for i := 0; i < count; i++ {
			a := anomaly.NewMemLeak(rate)
			a.Window = w
			if s.Size > 0 {
				a.ChunkSize = s.Size
			}
			a.Limit = s.Limit
			procs = append(procs, a)
		}

	case "netoccupy":
		if s.Peer == s.Node || s.Peer < 0 || s.Peer >= c.NumNodes() {
			return nil, fmt.Errorf("core: netoccupy needs a distinct peer node, got %d", s.Peer)
		}
		for i := 0; i < count; i++ {
			a := anomaly.NewNetOccupy(s.Node, s.Peer)
			a.Window = w
			if s.Intensity > 0 {
				a.Rate = s.Intensity
			}
			if s.Size > 0 {
				a.MessageSize = s.Size
			}
			procs = append(procs, a)
		}

	case "iometadata":
		rate := s.Intensity
		if rate <= 0 {
			rate = 100
		}
		a := anomaly.NewIOMetadata(rate, count)
		a.Window = w
		procs = append(procs, a)

	case "iobandwidth":
		size := s.Size
		if size <= 0 {
			size = units.GiB
		}
		a := anomaly.NewIOBandwidth(size, count)
		a.Window = w
		procs = append(procs, a)

	default:
		return nil, fmt.Errorf("core: unknown anomaly %q (see Table 1: %v)", s.Name, anomaly.Names())
	}

	for i, p := range procs {
		cpu := s.CPU
		if cpu >= 0 && len(procs) > 1 {
			// Spread multi-instance injections over consecutive CPUs.
			cpu = (s.CPU + i) % c.Config().Machine.Threads()
		}
		c.Place(p, s.Node, cpu)
	}
	return procs, nil
}
