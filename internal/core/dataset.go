package core

import (
	"context"
	"fmt"

	"hpas/internal/anomaly"
	"hpas/internal/apps"
	"hpas/internal/cluster"
	"hpas/internal/features"
	"hpas/internal/ml"
	"hpas/internal/units"
	"hpas/internal/xrand"
)

// DiagnosisClasses are the six labels of the paper's diagnosis use case
// (Figures 9 and 10), in the figures' order.
func DiagnosisClasses() []string {
	return []string{"none", "memleak", "memeater", "cpuoccupy", "membw", "cachecopy"}
}

// DatasetConfig controls labelled-data generation for the diagnosis use
// case: every application runs with every anomaly class (and without),
// monitoring data is collected from the anomalous node, and statistical
// features are extracted per run.
type DatasetConfig struct {
	// Apps to run (default: all of Table 2).
	Apps []string
	// Classes to label (default: DiagnosisClasses).
	Classes []string
	// Reps is the number of runs per (app, class) pair (default 1).
	// Each rep draws fresh anomaly intensities.
	Reps int
	// Window is the observed run length in seconds (default 60).
	Window float64
	// Warmup excludes the first seconds from feature extraction
	// (default 10).
	Warmup float64
	// Nodes is the job size (default 4).
	Nodes int
	// Noise is the monitoring noise (default 0.01).
	Noise float64
	// Seed drives intensity draws and run seeds.
	Seed uint64
	// MemBWCounter adds the uncore memory-bandwidth metric to the
	// monitored set (the paper's missing-counter ablation).
	MemBWCounter bool
}

// GenerateDataset produces the labelled feature matrix for the diagnosis
// experiment.
func GenerateDataset(cfg DatasetConfig) (*ml.Dataset, error) {
	return GenerateDatasetContext(context.Background(), cfg)
}

// GenerateDatasetContext is GenerateDataset with cancellation: the
// context aborts both the current simulated run and the remaining
// (app, class, rep) grid.
func GenerateDatasetContext(ctx context.Context, cfg DatasetConfig) (*ml.Dataset, error) {
	if len(cfg.Apps) == 0 {
		cfg.Apps = apps.Names()
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = DiagnosisClasses()
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 60
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 10
	}
	if cfg.Warmup >= cfg.Window {
		return nil, fmt.Errorf("core: warmup %v >= window %v", cfg.Warmup, cfg.Window)
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	rng := xrand.New(cfg.Seed + 0xda7a)

	classIdx := make(map[string]int, len(cfg.Classes))
	for i, c := range cfg.Classes {
		classIdx[c] = i
	}
	ds := &ml.Dataset{Classes: cfg.Classes}

	runSeed := cfg.Seed
	for _, app := range cfg.Apps {
		for _, class := range cfg.Classes {
			for rep := 0; rep < cfg.Reps; rep++ {
				runSeed++
				specs, err := DrawSpecs(class, rng)
				if err != nil {
					return nil, err
				}
				// Randomize the input size per run, as the paper's
				// dataset does across application configurations.
				scale := rng.Uniform(0.85, 1.2)
				res, err := RunContext(ctx, RunConfig{
					Cluster:      cluster.Voltrino(cfg.Nodes),
					App:          app,
					Iterations:   1 << 20, // never finishes inside the window
					AppScale:     scale,
					Anomalies:    specs,
					FixedSeconds: cfg.Window,
					Noise:        cfg.Noise,
					Seed:         runSeed,
					MemBWCounter: cfg.MemBWCounter,
				})
				if err != nil {
					return nil, fmt.Errorf("core: dataset run %s/%s: %w", app, class, err)
				}
				vec := features.ExtractWindow(res.Metrics[0], cfg.Warmup, cfg.Window)
				if ds.FeatureNames == nil {
					ds.FeatureNames = vec.Names
				}
				ds.X = append(ds.X, vec.Values)
				ds.Y = append(ds.Y, classIdx[class])
			}
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// DrawSpecs returns the injection specs for one labelled run of the
// given diagnosis class, with intensities drawn from the paper-like knob
// ranges so each class spans a realistic variety of severities. "none"
// yields no specs.
func DrawSpecs(class string, rng *xrand.RNG) ([]Spec, error) {
	const anomalyStart = 5
	switch class {
	case "none":
		return nil, nil
	case "cpuoccupy":
		return []Spec{{
			Name: "cpuoccupy", Node: 0, CPU: 32, Start: anomalyStart,
			Intensity: rng.Uniform(40, 100),
		}}, nil
	case "membw":
		return []Spec{{
			Name: "membw", Node: 0, CPU: 32, Start: anomalyStart,
			Intensity: rng.Uniform(0.4, 1),
			StreamBW:  rng.Uniform(15e9, 30e9),
			Count:     2,
		}}, nil
	case "cachecopy":
		levels := []anomaly.CacheLevel{anomaly.L1, anomaly.L2, anomaly.L3}
		return []Spec{{
			Name: "cachecopy", Node: 0, CPU: 32, Start: anomalyStart,
			Intensity: rng.Uniform(0.4, 1),
			Level:     levels[rng.Intn(3)],
		}}, nil
	case "memleak":
		return []Spec{{
			Name: "memleak", Node: 0, CPU: 34, Start: anomalyStart,
			Intensity: rng.Uniform(0.5, 3),
		}}, nil
	case "memeater":
		// A fast ramp (the generator realloc-fills back to back) so the
		// footprint plateaus inside the observation window, which is
		// what separates memeater from memleak in the paper's data.
		return []Spec{{
			Name: "memeater", Node: 0, CPU: 34, Start: anomalyStart,
			Size:      units.ByteSize(rng.Uniform(3, 10)) * units.GiB,
			Intensity: rng.Uniform(8, 20),
		}}, nil
	}
	return nil, fmt.Errorf("core: unknown diagnosis class %q", class)
}
