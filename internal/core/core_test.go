package core

import (
	"strings"
	"testing"

	"hpas/internal/anomaly"
	"hpas/internal/cluster"
	"hpas/internal/units"
)

func TestInjectEveryCatalogAnomaly(t *testing.T) {
	c := cluster.New(cluster.Voltrino(8))
	for _, name := range anomaly.Names() {
		spec := Spec{Name: name, Node: 0, CPU: -1, Peer: 4, Size: units.GiB}
		procs, err := Inject(c, spec)
		if err != nil {
			t.Errorf("Inject(%s): %v", name, err)
			continue
		}
		if len(procs) == 0 {
			t.Errorf("Inject(%s) created nothing", name)
		}
		for _, p := range procs {
			if p.Name() != name {
				t.Errorf("Inject(%s) created %s", name, p.Name())
			}
		}
	}
}

func TestInjectValidation(t *testing.T) {
	c := cluster.New(cluster.Voltrino(4))
	cases := []Spec{
		{Name: "nosuch", Node: 0},
		{Name: "cpuoccupy", Node: 99},
		{Name: "netoccupy", Node: 0, Peer: 0},
		{Name: "netoccupy", Node: 0, Peer: 99},
	}
	for _, s := range cases {
		if _, err := Inject(c, s); err == nil {
			t.Errorf("Inject(%+v): expected error", s)
		}
	}
}

func TestInjectCountSpreadsCPUs(t *testing.T) {
	c := cluster.New(cluster.Voltrino(2))
	procs, err := Inject(c, Spec{Name: "membw", Node: 0, CPU: 32, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 4 {
		t.Fatalf("created %d procs", len(procs))
	}
	seen := map[int]bool{}
	for _, p := range procs {
		cpu := c.Node(0).CPUOf(p)
		if seen[cpu] {
			t.Errorf("two instances share cpu %d", cpu)
		}
		seen[cpu] = true
	}
}

func TestRunWithApp(t *testing.T) {
	res, err := Run(RunConfig{
		Cluster:    cluster.Voltrino(4),
		App:        "CoMD",
		Iterations: 2,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.Duration <= 0 {
		t.Errorf("run did not finish: %+v", res)
	}
	if res.Job == nil || !res.Job.Done() {
		t.Error("job state wrong")
	}
	if len(res.Metrics) != 4 {
		t.Errorf("metrics for %d nodes", len(res.Metrics))
	}
}

func TestRunAnomalySlowsApp(t *testing.T) {
	base := RunConfig{Cluster: cluster.Voltrino(4), App: "CoMD", Iterations: 2, Seed: 3}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	dirty := base
	dirty.Anomalies = []Spec{{Name: "cachecopy", Node: 0, CPU: 32}}
	slowed, err := Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if slowed.Duration <= clean.Duration {
		t.Errorf("cachecopy did not slow CoMD: %v vs %v", slowed.Duration, clean.Duration)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := Run(RunConfig{Cluster: cluster.Voltrino(2), App: "nosuch"}); err == nil {
		t.Error("unknown app should error")
	}
	if _, err := Run(RunConfig{
		Cluster:   cluster.Voltrino(2),
		Anomalies: []Spec{{Name: "bogus", Node: 0}},
	}); err == nil {
		t.Error("bad anomaly should error")
	}
}

func TestRunFixedWindow(t *testing.T) {
	res, err := Run(RunConfig{
		Cluster:      cluster.Voltrino(1),
		FixedSeconds: 3,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration < 2.9 || res.Duration > 3.1 {
		t.Errorf("Duration = %v", res.Duration)
	}
	if res.Metrics[0].Get("user::procstat").Len() != 3 {
		t.Error("expected 3 one-second samples")
	}
}

func TestDiagnosisClassesOrder(t *testing.T) {
	want := []string{"none", "memleak", "memeater", "cpuoccupy", "membw", "cachecopy"}
	got := DiagnosisClasses()
	if len(got) != len(want) {
		t.Fatal("wrong class count")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("class %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestGenerateDatasetSmall(t *testing.T) {
	ds, err := GenerateDataset(DatasetConfig{
		Apps:    []string{"CoMD"},
		Classes: []string{"none", "cpuoccupy"},
		Reps:    2,
		Window:  12,
		Warmup:  4,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 4 {
		t.Errorf("samples = %d, want 4", ds.NumSamples())
	}
	if ds.NumClasses() != 2 || ds.NumFeatures() == 0 {
		t.Error("dataset shape wrong")
	}
	// Feature names carry metric provenance.
	found := false
	for _, n := range ds.FeatureNames {
		if strings.Contains(n, "user::procstat") {
			found = true
			break
		}
	}
	if !found {
		t.Error("feature names missing metric provenance")
	}
	// Labels cover both classes.
	if ds.Y[0] == ds.Y[2] {
		t.Error("labels not varied")
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	if _, err := GenerateDataset(DatasetConfig{Window: 5, Warmup: 10}); err == nil {
		t.Error("warmup >= window should error")
	}
	if _, err := GenerateDataset(DatasetConfig{
		Classes: []string{"bogus"}, Apps: []string{"CoMD"}, Window: 10, Warmup: 2,
	}); err == nil {
		t.Error("unknown class should error")
	}
}

func TestGenerateDatasetDeterministic(t *testing.T) {
	gen := func() []float64 {
		ds, err := GenerateDataset(DatasetConfig{
			Apps: []string{"CoMD"}, Classes: []string{"cpuoccupy"},
			Reps: 1, Window: 10, Warmup: 2, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds.X[0]
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dataset generation not deterministic")
		}
	}
}
