package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePhases parses a compact campaign description into timed phases,
// for command-line use. The syntax is a comma-separated list of
//
//	name@start-end[:intensity]
//
// e.g. "cpuoccupy@10-40:90,memleak@60-90" — cpuoccupy at 90% intensity
// active during [10,40) s and memleak with default intensity during
// [60,90) s. All phases target the given node; the CPU is the SMT
// sibling convention used throughout the experiments (pass -1 to
// auto-place).
func ParsePhases(s string, node, cpu int) ([]Phase, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("core: empty campaign description")
	}
	var phases []Phase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, window, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("core: phase %q: missing @start-end", part)
		}
		name = strings.TrimSpace(name)
		intensity := 0.0
		if w, intStr, has := strings.Cut(window, ":"); has {
			v, err := strconv.ParseFloat(strings.TrimSpace(intStr), 64)
			if err != nil {
				return nil, fmt.Errorf("core: phase %q: bad intensity: %v", part, err)
			}
			intensity = v
			window = w
		}
		startStr, endStr, ok := strings.Cut(window, "-")
		if !ok {
			return nil, fmt.Errorf("core: phase %q: window must be start-end", part)
		}
		start, err := strconv.ParseFloat(strings.TrimSpace(startStr), 64)
		if err != nil {
			return nil, fmt.Errorf("core: phase %q: bad start: %v", part, err)
		}
		end, err := strconv.ParseFloat(strings.TrimSpace(endStr), 64)
		if err != nil {
			return nil, fmt.Errorf("core: phase %q: bad end: %v", part, err)
		}
		if end <= start {
			return nil, fmt.Errorf("core: phase %q: end %v <= start %v", part, end, start)
		}
		phases = append(phases, Phase{
			Label:    name,
			Start:    start,
			Duration: end - start,
			Specs: []Spec{{
				Name:      name,
				Node:      node,
				CPU:       cpu,
				Intensity: intensity,
			}},
		})
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("core: no phases in %q", s)
	}
	return phases, nil
}
