package core

import (
	"context"
	"fmt"
	"sort"

	"hpas/internal/trace"
)

// Campaign composes multiple anomaly injections into a timed variability
// pattern, the mechanism the paper describes for building "more
// complicated variability patterns by using multiple anomaly instances"
// (Section 3). A campaign is a list of phases; each phase injects its
// specs over [Start, Start+Duration) on top of a base run.
type Campaign struct {
	// Base describes the cluster, application, and monitoring setup.
	// Base.Anomalies are injected in addition to the phases.
	Base RunConfig
	// Phases are the timed injections.
	Phases []Phase
}

// Phase is one timed step of a campaign.
type Phase struct {
	// Label names the phase in the timeline.
	Label string
	// Start is the phase start in simulation seconds.
	Start float64
	// Duration is how long the phase's anomalies stay active.
	Duration float64
	// Specs are injected with their windows set to the phase bounds
	// (any Start/End already present on a spec is overridden).
	Specs []Spec
}

// Timeline summarizes which phases were active at each monitor sample,
// for labelling time series windows.
type Timeline struct {
	Period float64
	Labels []string // one per sample; "" when no phase is active
}

// LabelAt returns the active phase label at time t.
func (tl *Timeline) LabelAt(t float64) string {
	i := int(t / tl.Period)
	if i < 0 || i >= len(tl.Labels) {
		return ""
	}
	return tl.Labels[i]
}

// Windows returns the [from,to) sample windows of every contiguous
// labelled region, for per-phase feature extraction.
func (tl *Timeline) Windows() []struct {
	Label    string
	From, To float64
} {
	var out []struct {
		Label    string
		From, To float64
	}
	start := -1
	cur := ""
	flush := func(end int) {
		if start >= 0 && cur != "" {
			out = append(out, struct {
				Label    string
				From, To float64
			}{cur, float64(start) * tl.Period, float64(end) * tl.Period})
		}
	}
	for i, l := range tl.Labels {
		if l != cur {
			flush(i)
			start, cur = i, l
		}
	}
	flush(len(tl.Labels))
	return out
}

// CampaignResult is the outcome of a campaign run.
type CampaignResult struct {
	*RunResult
	Timeline Timeline
}

// Run executes the composed pattern and returns the run result plus a
// per-sample phase timeline. Phases may overlap; the timeline records
// the latest-starting active phase.
func (c *Campaign) Run() (*CampaignResult, error) {
	return c.RunContext(context.Background())
}

// RunContext is Run with cancellation (see RunContext on the run level):
// the context is checked every simulation tick and a cancelled campaign
// returns ctx.Err().
func (c *Campaign) RunContext(ctx context.Context) (*CampaignResult, error) {
	if len(c.Phases) == 0 {
		return nil, fmt.Errorf("core: campaign has no phases")
	}
	cfg := c.Base
	for _, ph := range c.Phases {
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("core: phase %q has non-positive duration", ph.Label)
		}
		for _, s := range ph.Specs {
			s.Start = ph.Start
			s.End = ph.Start + ph.Duration
			cfg.Anomalies = append(cfg.Anomalies, s)
		}
	}
	// The run must cover every phase.
	end := 0.0
	for _, ph := range c.Phases {
		if e := ph.Start + ph.Duration; e > end {
			end = e
		}
	}
	if cfg.FixedSeconds < end {
		cfg.FixedSeconds = end
	}

	res, err := RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}

	period := cfg.SamplePeriod
	if period <= 0 {
		period = 1
	}
	samples := 0
	if len(res.Metrics) > 0 {
		if s := res.Metrics[0].Get("user::procstat"); s != nil {
			samples = s.Len()
		}
	}
	tl := Timeline{Period: period, Labels: make([]string, samples)}
	// Later-starting phases win on overlap.
	phases := append([]Phase(nil), c.Phases...)
	sort.SliceStable(phases, func(a, b int) bool { return phases[a].Start < phases[b].Start })
	for _, ph := range phases {
		for i := range tl.Labels {
			t := float64(i) * period
			if t >= ph.Start && t < ph.Start+ph.Duration {
				tl.Labels[i] = ph.Label
			}
		}
	}
	return &CampaignResult{RunResult: res, Timeline: tl}, nil
}

// PhaseSeries extracts the sub-series of one metric covering the given
// phase label's first contiguous window, or nil when the label never
// became active.
func (r *CampaignResult) PhaseSeries(nodeID int, metric, label string) *trace.Series {
	for _, w := range r.Timeline.Windows() {
		if w.Label == label {
			s := r.Metrics[nodeID].Get(metric)
			if s == nil {
				return nil
			}
			return s.Slice(w.From, w.To)
		}
	}
	return nil
}
