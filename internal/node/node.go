package node

import (
	"fmt"
	"math"

	"hpas/internal/units"
	"hpas/internal/xrand"
)

// CacheLine is the cache line size used to convert miss counts into
// memory traffic.
const CacheLine = 64

// Demand describes the resources a process wants during one tick, at the
// speed it would run unimpeded.
type Demand struct {
	// CPU is the fraction of one hardware thread wanted (0..1). A busy
	// loop demands 1; cpuoccupy at 40% intensity demands 0.4.
	CPU float64
	// WorkingSet is the size of the process's hot data.
	WorkingSet units.ByteSize
	// APKI is the number of cache accesses per kilo-instruction.
	APKI float64
	// IPS is the instruction issue rate (instructions/second) the process
	// would achieve on an uncontended thread with an all-L1 working set.
	// Zero means "clock-bound": the node substitutes its clock rate.
	IPS float64
	// StreamBW is non-temporal (cache-bypassing) memory traffic demanded,
	// in bytes/second at full speed. Used by membw and STREAM.
	StreamBW float64
	// Resident is the process's resident memory.
	Resident units.ByteSize
}

// Grant reports the resources a process received during one tick.
type Grant struct {
	// CPUShare is the granted fraction of the thread (0..1) after
	// fair-share scheduling.
	CPUShare float64
	// SMT is the throughput factor from SMT co-residency (1 when the
	// sibling thread is idle, spec.SMTFactor when busy).
	SMT float64
	// CovL1, CovL2, CovL3 are the cumulative fractions of the working set
	// resident at or below each cache level (CovL1 <= CovL2 <= CovL3 <= 1).
	CovL1, CovL2, CovL3 float64
	// BWFrac is the granted fraction of demanded memory bandwidth (0..1].
	BWFrac float64
	// OOMKilled is set when the node's OOM killer selected this process.
	OOMKilled bool

	spec *MachineSpec
}

// CPUEff returns the effective compute throughput factor of the thread:
// granted share times the SMT factor.
func (g Grant) CPUEff() float64 { return g.CPUShare * g.SMT }

// CPI returns the average cycles per instruction implied by the grant for
// a process issuing apki accesses per kilo-instruction, relative to a base
// CPI of 1. Memory-level misses are inflated by bandwidth throttling.
func (g Grant) CPI(apki float64) float64 {
	if g.spec == nil {
		return 1
	}
	fL2 := g.CovL2 - g.CovL1
	fL3 := g.CovL3 - g.CovL2
	fMem := 1 - g.CovL3
	bw := g.BWFrac
	if bw < 0.02 {
		bw = 0.02
	}
	perAccess := fL2*g.spec.L2Penalty + fL3*g.spec.L3Penalty + fMem*g.spec.MemPenalty/bw
	return 1 + apki/1000*perAccess
}

// EffIPS returns the instructions/second a process achieves under this
// grant given its unimpeded issue rate ips and access intensity apki.
func (g Grant) EffIPS(ips, apki float64) float64 {
	if g.spec != nil && (ips <= 0 || ips > g.spec.ClockHz) {
		ips = g.spec.ClockHz
	}
	return ips * g.CPUEff() / g.CPI(apki)
}

// Proc is a process resident on a node. Implementations include the
// synthetic anomalies and the per-rank application models.
type Proc interface {
	// Name identifies the process in reports and metrics.
	Name() string
	// Demand is called once per tick before contention resolution.
	Demand(now float64) Demand
	// Advance is called once per tick with the resolved grant. The
	// process updates its internal progress and returns its usage.
	Advance(now, dt float64, g Grant) Usage
	// Done reports whether the process has finished and should be
	// removed from the node.
	Done() bool
}

// Usage reports what a process actually consumed during one tick, for
// hardware-counter accounting.
type Usage struct {
	Instructions float64 // instructions retired
	CPUSeconds   float64 // thread-seconds of CPU time
	L2Misses     float64 // accesses missing L1+L2
	L3Misses     float64 // accesses missing all caches
	MemBytes     float64 // bytes moved to/from memory (incl. streaming)
}

// Counters are the per-node cumulative hardware/OS counters sampled by
// the monitor. All values are monotonically non-decreasing except
// MemUsed, which is instantaneous.
type Counters struct {
	UserSeconds  float64 // user CPU time (thread-seconds)
	SysSeconds   float64 // system CPU time (thread-seconds)
	Instructions float64
	L2Misses     float64
	L3Misses     float64
	MemBytes     float64        // cumulative memory traffic
	PageFaults   float64        // cumulative, incremented on allocation growth
	MemUsed      units.ByteSize // instantaneous resident total (incl. baseline)
	OOMKills     int
}

type placement struct {
	proc Proc
	cpu  int
	res  units.ByteSize // resident bytes last tick, for pgfault accounting
}

// Node is one simulated compute node.
type Node struct {
	Spec MachineSpec
	ID   int

	procs    []*placement
	ctr      Counters
	rng      *xrand.RNG
	lastLoad float64

	// scratch buffers reused across ticks
	demands []Demand
	grants  []Grant
}

// New returns a node with the given spec and deterministic noise seed.
func New(id int, spec MachineSpec, rng *xrand.RNG) *Node {
	if rng == nil {
		rng = xrand.New(uint64(id)*0x9e37 + 1)
	}
	n := &Node{Spec: spec, ID: id, rng: rng}
	n.ctr.MemUsed = spec.BaselineResident
	return n
}

// Place pins proc to the given logical CPU. cpu == -1 picks the
// least-loaded thread-0 CPU (filling physical cores before siblings).
// It panics on an out-of-range CPU.
func (n *Node) Place(proc Proc, cpu int) {
	if cpu == -1 {
		cpu = n.leastLoadedCPU()
	}
	if cpu < 0 || cpu >= n.Spec.Threads() {
		panic(fmt.Sprintf("node: cpu %d out of range [0,%d)", cpu, n.Spec.Threads()))
	}
	n.procs = append(n.procs, &placement{proc: proc, cpu: cpu})
}

func (n *Node) leastLoadedCPU() int {
	load := make([]int, n.Spec.Threads())
	for _, p := range n.procs {
		load[p.cpu]++
	}
	best, bestLoad := 0, math.MaxInt
	for cpu := 0; cpu < n.Spec.Threads(); cpu++ {
		if load[cpu] < bestLoad {
			best, bestLoad = cpu, load[cpu]
		}
	}
	return best
}

// Remove detaches proc from the node. It is a no-op if absent.
func (n *Node) Remove(proc Proc) {
	for i, p := range n.procs {
		if p.proc == proc {
			n.procs = append(n.procs[:i], n.procs[i+1:]...)
			return
		}
	}
}

// Procs returns the resident processes in placement order.
func (n *Node) Procs() []Proc {
	out := make([]Proc, len(n.procs))
	for i, p := range n.procs {
		out[i] = p.proc
	}
	return out
}

// NumProcs returns the number of resident processes.
func (n *Node) NumProcs() int { return len(n.procs) }

// CPUOf returns the logical CPU proc is pinned to, or -1 if absent.
func (n *Node) CPUOf(proc Proc) int {
	for _, p := range n.procs {
		if p.proc == proc {
			return p.cpu
		}
	}
	return -1
}

// Counters returns a copy of the node's cumulative counters.
func (n *Node) Counters() Counters { return n.ctr }

// MemFree returns the node's free memory.
func (n *Node) MemFree() units.ByteSize {
	free := n.Spec.Memory - n.ctr.MemUsed
	if free < 0 {
		free = 0
	}
	return free
}

// CPULoad returns the instantaneous fraction of all hardware threads that
// were busy during the last tick (0..1), as /proc/loadavg-style samplers
// would derive it.
func (n *Node) CPULoad() float64 { return n.lastLoad }

// Tick resolves one step of contention and advances all processes.
// Finished processes are removed afterwards.
func (n *Node) Tick(now, dt float64) {
	spec := &n.Spec
	np := len(n.procs)
	if cap(n.demands) < np {
		n.demands = make([]Demand, np)
		n.grants = make([]Grant, np)
	}
	demands := n.demands[:np]
	grants := n.grants[:np]

	for i, p := range n.procs {
		demands[i] = p.proc.Demand(now)
		grants[i] = Grant{SMT: 1, BWFrac: 1, spec: spec}
	}

	n.resolveCPU(demands, grants)
	n.resolveCache(demands, grants)
	n.resolveMemBW(demands, grants)
	n.resolveMemory(demands, grants)

	// Advance processes and account usage.
	var busy float64
	for i, p := range n.procs {
		u := p.proc.Advance(now, dt, grants[i])
		n.ctr.UserSeconds += u.CPUSeconds
		n.ctr.Instructions += u.Instructions
		n.ctr.L2Misses += u.L2Misses
		n.ctr.L3Misses += u.L3Misses
		n.ctr.MemBytes += u.MemBytes
		busy += grants[i].CPUShare * minf(demands[i].CPU, 1)
		// Page faults: first-touch on resident growth (4 KiB pages).
		if demands[i].Resident > p.res {
			n.ctr.PageFaults += float64(demands[i].Resident-p.res) / 4096
		}
		p.res = demands[i].Resident
	}

	// OS noise: background system CPU time.
	sysBusy := spec.OSNoise * n.rng.Jitter(0.4)
	n.ctr.SysSeconds += sysBusy * dt
	n.lastLoad = (busy + sysBusy) / float64(spec.Threads())

	// Instantaneous memory usage.
	used := spec.BaselineResident
	for i := range n.procs {
		used += demands[i].Resident
	}
	n.ctr.MemUsed = used

	// Drop finished processes.
	kept := n.procs[:0]
	for _, p := range n.procs {
		if !p.proc.Done() {
			kept = append(kept, p)
		}
	}
	n.procs = kept
}

// resolveCPU fair-shares each logical CPU among its resident processes
// and applies the SMT penalty when a sibling thread is busy.
func (n *Node) resolveCPU(demands []Demand, grants []Grant) {
	spec := &n.Spec
	threadDemand := make([]float64, spec.Threads())
	for i, p := range n.procs {
		threadDemand[p.cpu] += demands[i].CPU
	}
	for i, p := range n.procs {
		td := threadDemand[p.cpu]
		share := demands[i].CPU
		if td > 1 {
			share = demands[i].CPU / td
		}
		grants[i].CPUShare = share
		sib := spec.Sibling(p.cpu)
		if sib != p.cpu && threadDemand[sib] > 0.05 {
			grants[i].SMT = spec.SMTFactor
		}
	}
}

// resolveCache assigns proportional occupancy at each level. L1/L2 are
// shared by the SMT siblings of a physical core; L3 by all CPUs of a
// socket. Coverage at a level is the fraction of the working set that
// fits in the process's occupancy share, made cumulative across levels.
func (n *Node) resolveCache(demands []Demand, grants []Grant) {
	spec := &n.Spec
	coreWS := make([]float64, spec.PhysCores())
	sockWS := make([]float64, spec.Sockets)
	for i, p := range n.procs {
		ws := float64(demands[i].WorkingSet)
		coreWS[spec.CoreOf(p.cpu)] += ws
		sockWS[spec.SocketOf(p.cpu)] += ws
	}
	for i, p := range n.procs {
		ws := float64(demands[i].WorkingSet)
		if ws <= 0 {
			grants[i].CovL1, grants[i].CovL2, grants[i].CovL3 = 1, 1, 1
			continue
		}
		core := spec.CoreOf(p.cpu)
		sock := spec.SocketOf(p.cpu)
		c1 := coverage(ws, coreWS[core], float64(spec.L1))
		c2 := coverage(ws, coreWS[core], float64(spec.L2))
		c3 := coverage(ws, sockWS[sock], float64(spec.L3))
		if c2 < c1 {
			c2 = c1
		}
		if c3 < c2 {
			c3 = c2
		}
		grants[i].CovL1, grants[i].CovL2, grants[i].CovL3 = c1, c2, c3
	}
}

// coverage returns the fraction of a process working set ws resident in a
// cache of the given capacity when the sharing domain demands totalWS.
func coverage(ws, totalWS, capacity float64) float64 {
	alloc := ws
	if totalWS > capacity {
		alloc = capacity * ws / totalWS
	}
	c := alloc / ws
	if c > 1 {
		c = 1
	}
	return c
}

// resolveMemBW throttles per-socket streaming+miss traffic proportionally
// when the socket's bandwidth ceiling is exceeded.
func (n *Node) resolveMemBW(demands []Demand, grants []Grant) {
	spec := &n.Spec
	sockDemand := make([]float64, spec.Sockets)
	bwDemand := make([]float64, len(n.procs))
	for i, p := range n.procs {
		d := demands[i]
		ips := d.IPS
		if ips <= 0 || ips > spec.ClockHz {
			ips = spec.ClockHz
		}
		// Miss traffic at the issue rate the process can actually
		// sustain given its cache misses (BWFrac=1 first-pass CPI):
		// without the stall correction, cache-hungry processes would
		// appear to demand memory bandwidth they can never generate.
		g := grants[i]
		fL2 := g.CovL2 - g.CovL1
		fL3 := g.CovL3 - g.CovL2
		fMem := 1 - g.CovL3
		cpi := 1 + d.APKI/1000*(fL2*spec.L2Penalty+fL3*spec.L3Penalty+fMem*spec.MemPenalty)
		missRate := ips / cpi * d.APKI / 1000 * fMem
		bw := d.StreamBW + missRate*CacheLine
		bwDemand[i] = bw
		sockDemand[spec.SocketOf(p.cpu)] += bw * g.CPUEff()
	}
	for i, p := range n.procs {
		sock := spec.SocketOf(p.cpu)
		capBW := float64(spec.MemBWPerSocket)
		if sockDemand[sock] > capBW && bwDemand[i] > 0 {
			grants[i].BWFrac = capBW / sockDemand[sock]
		}
	}
}

// resolveMemory triggers the OOM killer while total resident demand
// exceeds physical memory: the largest-resident process is killed first,
// mirroring Linux's badness heuristic on swapless HPC nodes.
func (n *Node) resolveMemory(demands []Demand, grants []Grant) {
	spec := &n.Spec
	total := spec.BaselineResident
	for i := range n.procs {
		total += demands[i].Resident
	}
	for total > spec.Memory {
		victim := -1
		var victimRes units.ByteSize
		for i := range n.procs {
			if grants[i].OOMKilled {
				continue
			}
			if demands[i].Resident > victimRes {
				victim, victimRes = i, demands[i].Resident
			}
		}
		if victim < 0 {
			break
		}
		grants[victim].OOMKilled = true
		n.ctr.OOMKills++
		total -= victimRes
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
