package node

import (
	"math"
	"testing"
	"testing/quick"

	"hpas/internal/units"
	"hpas/internal/xrand"
)

// stubProc is a configurable process recording the grants it receives.
type stubProc struct {
	name      string
	demand    Demand
	lastGrant Grant
	ticks     int
	done      bool
	killed    bool
}

func (s *stubProc) Name() string              { return s.name }
func (s *stubProc) Demand(now float64) Demand { return s.demand }
func (s *stubProc) Done() bool                { return s.done }

func (s *stubProc) Advance(now, dt float64, g Grant) Usage {
	s.lastGrant = g
	s.ticks++
	if g.OOMKilled {
		s.killed = true
		s.done = true
	}
	eff := g.EffIPS(s.demand.IPS, s.demand.APKI) * g.CPUShare // not used for correctness
	_ = eff
	return Usage{
		Instructions: 1e6 * dt,
		CPUSeconds:   g.CPUShare * dt,
		L2Misses:     10 * dt,
		L3Misses:     5 * dt,
		MemBytes:     100 * dt,
	}
}

func (s *stubProc) last() Grant { return s.lastGrant }

func busyProc(name string) *stubProc {
	return &stubProc{name: name, demand: Demand{CPU: 1}}
}

func newTestNode() *Node {
	return New(0, Voltrino(), xrand.New(1))
}

func TestSpecGeometry(t *testing.T) {
	s := Voltrino()
	if s.Threads() != 64 || s.PhysCores() != 32 {
		t.Fatalf("threads=%d cores=%d", s.Threads(), s.PhysCores())
	}
	if s.CoreOf(0) != 0 || s.CoreOf(32) != 0 || s.CoreOf(33) != 1 {
		t.Error("CoreOf wrong")
	}
	if s.SocketOf(0) != 0 || s.SocketOf(16) != 1 || s.SocketOf(48) != 1 {
		t.Error("SocketOf wrong")
	}
	if s.Sibling(0) != 32 || s.Sibling(32) != 0 || s.Sibling(5) != 37 {
		t.Error("Sibling wrong")
	}
}

func TestSiblingWithoutSMT(t *testing.T) {
	s := Voltrino()
	s.ThreadsPerCore = 1
	if s.Sibling(3) != 3 {
		t.Error("Sibling without SMT should be identity")
	}
}

func TestPlaceRemove(t *testing.T) {
	n := newTestNode()
	a, b := busyProc("a"), busyProc("b")
	n.Place(a, 0)
	n.Place(b, -1) // auto: least loaded
	if n.NumProcs() != 2 {
		t.Fatal("NumProcs != 2")
	}
	if n.CPUOf(a) != 0 {
		t.Error("a not on cpu 0")
	}
	if cpu := n.CPUOf(b); cpu == 0 {
		t.Error("auto-placement chose the busy cpu")
	}
	n.Remove(a)
	if n.NumProcs() != 1 || n.CPUOf(a) != -1 {
		t.Error("Remove failed")
	}
	n.Remove(a) // no-op
}

func TestPlacePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	newTestNode().Place(busyProc("x"), 1000)
}

func TestCPUFairShare(t *testing.T) {
	n := newTestNode()
	a, b := busyProc("a"), busyProc("b")
	n.Place(a, 0)
	n.Place(b, 0) // same logical CPU
	n.Tick(0, 0.1)
	if g := a.last(); math.Abs(g.CPUShare-0.5) > 1e-9 {
		t.Errorf("a share = %v, want 0.5", g.CPUShare)
	}
	if g := b.last(); math.Abs(g.CPUShare-0.5) > 1e-9 {
		t.Errorf("b share = %v, want 0.5", g.CPUShare)
	}
}

func TestCPUUndersubscribed(t *testing.T) {
	n := newTestNode()
	a := &stubProc{name: "a", demand: Demand{CPU: 0.3}}
	b := &stubProc{name: "b", demand: Demand{CPU: 0.4}}
	n.Place(a, 0)
	n.Place(b, 0)
	n.Tick(0, 0.1)
	if a.last().CPUShare != 0.3 || b.last().CPUShare != 0.4 {
		t.Error("undersubscribed thread should grant full demand")
	}
}

func TestSMTPenalty(t *testing.T) {
	n := newTestNode()
	a, b := busyProc("a"), busyProc("b")
	n.Place(a, 0)
	n.Place(b, 32) // SMT sibling of cpu 0
	n.Tick(0, 0.1)
	if g := a.last(); g.SMT != n.Spec.SMTFactor {
		t.Errorf("a SMT = %v, want %v", g.SMT, n.Spec.SMTFactor)
	}
	if g := a.last(); math.Abs(g.CPUShare-1) > 1e-9 {
		t.Error("a should still get its full thread")
	}
	// Idle sibling → no penalty.
	n2 := newTestNode()
	c := busyProc("c")
	n2.Place(c, 0)
	n2.Tick(0, 0.1)
	if c.last().SMT != 1 {
		t.Error("no sibling: SMT factor should be 1")
	}
}

func TestCacheCoverageAlone(t *testing.T) {
	n := newTestNode()
	a := &stubProc{name: "a", demand: Demand{CPU: 1, WorkingSet: 16 * units.KiB, APKI: 100}}
	n.Place(a, 0)
	n.Tick(0, 0.1)
	g := a.last()
	if g.CovL1 != 1 || g.CovL2 != 1 || g.CovL3 != 1 {
		t.Errorf("small WS should fully fit: %+v", g)
	}
}

func TestCacheCoverageL3Contention(t *testing.T) {
	// Two procs on different cores of socket 0 each want the full L3.
	n := newTestNode()
	ws := n.Spec.L3
	a := &stubProc{name: "a", demand: Demand{CPU: 1, WorkingSet: ws, APKI: 100}}
	b := &stubProc{name: "b", demand: Demand{CPU: 1, WorkingSet: ws, APKI: 100}}
	n.Place(a, 0)
	n.Place(b, 1)
	n.Tick(0, 0.1)
	g := a.last()
	if math.Abs(g.CovL3-0.5) > 1e-9 {
		t.Errorf("CovL3 = %v, want 0.5", g.CovL3)
	}
	if g.CovL1 > g.CovL2 || g.CovL2 > g.CovL3 {
		t.Errorf("coverage not monotone: %+v", g)
	}
}

func TestCacheDifferentSocketsIsolated(t *testing.T) {
	n := newTestNode()
	ws := n.Spec.L3
	a := &stubProc{name: "a", demand: Demand{CPU: 1, WorkingSet: ws, APKI: 100}}
	b := &stubProc{name: "b", demand: Demand{CPU: 1, WorkingSet: ws, APKI: 100}}
	n.Place(a, 0)
	n.Place(b, 16) // socket 1
	n.Tick(0, 0.1)
	if g := a.last(); g.CovL3 != 1 {
		t.Errorf("cross-socket contention leaked: CovL3 = %v", g.CovL3)
	}
}

func TestZeroWorkingSetFullCoverage(t *testing.T) {
	n := newTestNode()
	a := busyProc("a")
	n.Place(a, 0)
	n.Tick(0, 0.1)
	if g := a.last(); g.CovL3 != 1 {
		t.Error("zero working set should be fully covered")
	}
}

func TestMemBWThrottle(t *testing.T) {
	n := newTestNode()
	capBW := float64(n.Spec.MemBWPerSocket)
	a := &stubProc{name: "a", demand: Demand{CPU: 1, StreamBW: capBW}}
	b := &stubProc{name: "b", demand: Demand{CPU: 1, StreamBW: capBW}}
	n.Place(a, 0)
	n.Place(b, 1)
	n.Tick(0, 0.1)
	if g := a.last(); math.Abs(g.BWFrac-0.5) > 1e-6 {
		t.Errorf("BWFrac = %v, want 0.5", g.BWFrac)
	}
	// Undersubscribed: full grant.
	n2 := newTestNode()
	c := &stubProc{name: "c", demand: Demand{CPU: 1, StreamBW: capBW / 4}}
	n2.Place(c, 0)
	n2.Tick(0, 0.1)
	if c.last().BWFrac != 1 {
		t.Error("undersubscribed bandwidth should be fully granted")
	}
}

func TestMemBWSocketsIndependent(t *testing.T) {
	n := newTestNode()
	capBW := float64(n.Spec.MemBWPerSocket)
	a := &stubProc{name: "a", demand: Demand{CPU: 1, StreamBW: capBW * 2}}
	b := &stubProc{name: "b", demand: Demand{CPU: 1, StreamBW: capBW / 8}}
	n.Place(a, 0)
	n.Place(b, 16) // other socket
	n.Tick(0, 0.1)
	if b.last().BWFrac != 1 {
		t.Error("socket 1 should be unaffected by socket 0 saturation")
	}
	if a.last().BWFrac >= 1 {
		t.Error("socket 0 should be throttled")
	}
}

func TestOOMKillsLargest(t *testing.T) {
	n := newTestNode()
	mem := n.Spec.Memory
	small := &stubProc{name: "small", demand: Demand{Resident: mem / 4}}
	big := &stubProc{name: "big", demand: Demand{Resident: mem}}
	n.Place(small, 0)
	n.Place(big, 1)
	n.Tick(0, 0.1)
	if !big.killed {
		t.Error("largest process not OOM-killed")
	}
	if small.killed {
		t.Error("small process wrongly killed")
	}
	if n.Counters().OOMKills != 1 {
		t.Errorf("OOMKills = %d", n.Counters().OOMKills)
	}
	// big is done and must be dropped.
	if n.NumProcs() != 1 {
		t.Errorf("NumProcs = %d after OOM", n.NumProcs())
	}
}

func TestCountersAccumulate(t *testing.T) {
	n := newTestNode()
	a := busyProc("a")
	n.Place(a, 0)
	for i := 0; i < 10; i++ {
		n.Tick(float64(i)*0.1, 0.1)
	}
	c := n.Counters()
	if math.Abs(c.UserSeconds-1.0) > 1e-9 {
		t.Errorf("UserSeconds = %v, want 1.0", c.UserSeconds)
	}
	if c.Instructions != 1e6 {
		t.Errorf("Instructions = %v", c.Instructions)
	}
	if c.SysSeconds <= 0 {
		t.Error("SysSeconds should accumulate OS noise")
	}
	if c.L2Misses <= 0 || c.L3Misses <= 0 || c.MemBytes <= 0 {
		t.Error("miss counters should accumulate")
	}
}

func TestMemUsedAndPageFaults(t *testing.T) {
	n := newTestNode()
	a := &stubProc{name: "a", demand: Demand{Resident: 1 * units.GiB}}
	n.Place(a, 0)
	n.Tick(0, 0.1)
	want := n.Spec.BaselineResident + 1*units.GiB
	if n.Counters().MemUsed != want {
		t.Errorf("MemUsed = %v, want %v", n.Counters().MemUsed, want)
	}
	pf := n.Counters().PageFaults
	if pf != float64(1*units.GiB)/4096 {
		t.Errorf("PageFaults = %v", pf)
	}
	// Growth adds more faults; steady state adds none.
	a.demand.Resident = 2 * units.GiB
	n.Tick(0.1, 0.1)
	pf2 := n.Counters().PageFaults
	if pf2 <= pf {
		t.Error("growth should add page faults")
	}
	n.Tick(0.2, 0.1)
	if n.Counters().PageFaults != pf2 {
		t.Error("steady state should not add page faults")
	}
	if n.MemFree() != n.Spec.Memory-n.Spec.BaselineResident-2*units.GiB {
		t.Errorf("MemFree = %v", n.MemFree())
	}
}

func TestDoneProcsRemoved(t *testing.T) {
	n := newTestNode()
	a := busyProc("a")
	n.Place(a, 0)
	n.Tick(0, 0.1)
	a.done = true
	n.Tick(0.1, 0.1)
	if n.NumProcs() != 0 {
		t.Error("done process not removed")
	}
}

func TestGrantCPIOrdering(t *testing.T) {
	spec := Voltrino()
	hit := Grant{CPUShare: 1, SMT: 1, CovL1: 1, CovL2: 1, CovL3: 1, BWFrac: 1, spec: &spec}
	l3 := Grant{CPUShare: 1, SMT: 1, CovL1: 0, CovL2: 0, CovL3: 1, BWFrac: 1, spec: &spec}
	mem := Grant{CPUShare: 1, SMT: 1, CovL1: 0, CovL2: 0, CovL3: 0, BWFrac: 1, spec: &spec}
	memSlow := Grant{CPUShare: 1, SMT: 1, CovL1: 0, CovL2: 0, CovL3: 0, BWFrac: 0.25, spec: &spec}
	apki := 50.0
	if !(hit.CPI(apki) < l3.CPI(apki) && l3.CPI(apki) < mem.CPI(apki) && mem.CPI(apki) < memSlow.CPI(apki)) {
		t.Errorf("CPI ordering broken: %v %v %v %v",
			hit.CPI(apki), l3.CPI(apki), mem.CPI(apki), memSlow.CPI(apki))
	}
	if hit.CPI(apki) != 1 {
		t.Errorf("all-hit CPI = %v, want 1", hit.CPI(apki))
	}
	if hit.CPI(0) != 1 {
		t.Error("zero-APKI CPI should be 1")
	}
}

func TestGrantEffIPS(t *testing.T) {
	spec := Voltrino()
	g := Grant{CPUShare: 0.5, SMT: 1, CovL1: 1, CovL2: 1, CovL3: 1, BWFrac: 1, spec: &spec}
	if got := g.EffIPS(2e9, 10); math.Abs(got-1e9) > 1 {
		t.Errorf("EffIPS = %v, want 1e9", got)
	}
	// Zero IPS defaults to clock rate.
	if got := g.EffIPS(0, 0); math.Abs(got-spec.ClockHz/2) > 1 {
		t.Errorf("default EffIPS = %v", got)
	}
	// Grant without spec is a no-op model.
	var bare Grant
	if bare.CPI(100) != 1 {
		t.Error("bare Grant CPI should be 1")
	}
}

// Property: coverage fractions are valid and monotone for any placement.
func TestCoverageInvariantProperty(t *testing.T) {
	f := func(wsRaw [4]uint32, cpuRaw [4]uint8) bool {
		n := newTestNode()
		procs := make([]*stubProc, 4)
		for i := range procs {
			procs[i] = &stubProc{
				name: "p",
				demand: Demand{
					CPU:        1,
					WorkingSet: units.ByteSize(wsRaw[i]) * units.KiB,
					APKI:       50,
				},
			}
			n.Place(procs[i], int(cpuRaw[i])%n.Spec.Threads())
		}
		n.Tick(0, 0.1)
		for _, p := range procs {
			g := p.last()
			if g.CovL1 < 0 || g.CovL3 > 1 || g.CovL1 > g.CovL2 || g.CovL2 > g.CovL3 {
				return false
			}
			if g.CPUShare < 0 || g.CPUShare > 1 || g.BWFrac <= 0 || g.BWFrac > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNodeTick(b *testing.B) {
	n := newTestNode()
	for i := 0; i < 32; i++ {
		n.Place(&stubProc{name: "p", demand: Demand{CPU: 1, WorkingSet: units.MiB, APKI: 20}}, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Tick(float64(i)*0.1, 0.1)
	}
}

// Property: granted CPU shares on any logical CPU never exceed 1, and
// granted socket bandwidth never exceeds the socket ceiling.
func TestConservationProperty(t *testing.T) {
	f := func(cpuRaw [6]uint8, demRaw [6]uint8) bool {
		n := newTestNode()
		procs := make([]*stubProc, 6)
		for i := range procs {
			procs[i] = &stubProc{
				name: "p",
				demand: Demand{
					CPU:      float64(demRaw[i]%101) / 100,
					StreamBW: float64(demRaw[i]) * 5e8,
				},
			}
			n.Place(procs[i], int(cpuRaw[i])%n.Spec.Threads())
		}
		n.Tick(0, 0.1)
		// Per-thread share conservation.
		threadShare := make(map[int]float64)
		for _, p := range procs {
			threadShare[n.CPUOf(p)] += p.lastGrant.CPUShare
		}
		for _, s := range threadShare {
			if s > 1+1e-9 {
				return false
			}
		}
		// Socket bandwidth conservation: sum of granted stream traffic.
		sockBW := make(map[int]float64)
		for _, p := range procs {
			g := p.lastGrant
			sockBW[n.Spec.SocketOf(n.CPUOf(p))] += p.demand.StreamBW * g.BWFrac * g.CPUEff()
		}
		for _, bw := range sockBW {
			if bw > float64(n.Spec.MemBWPerSocket)*(1+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
