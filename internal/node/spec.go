// Package node models a single compute node of the simulated cluster:
// hardware threads with fair-share scheduling and an SMT penalty, a
// three-level cache hierarchy with proportional occupancy, a per-socket
// memory-bandwidth ceiling, finite memory capacity with an OOM killer, and
// a small OS-noise source.
//
// The model resolves contention once per simulation tick. Processes
// declare a Demand (CPU share, working set, access intensity, streaming
// memory bandwidth, resident bytes) and receive a Grant (effective CPU
// share, per-level hit fractions, bandwidth fraction). Execution-speed
// modelling (CPI) is left to the process via the CPI helper so that
// application models own their sensitivity to each resource.
package node

import "hpas/internal/units"

// MachineSpec describes the hardware of one node. Two stock specs are
// provided matching the paper's systems: Voltrino (Cray XC40m Haswell
// partition) and Chameleon Cloud.
type MachineSpec struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int // SMT width (2 on both testbeds)

	L1 units.ByteSize // per physical core (data)
	L2 units.ByteSize // per physical core
	L3 units.ByteSize // per socket, shared

	Memory         units.ByteSize // per node
	MemBWPerSocket units.Rate     // streaming memory bandwidth per socket

	ClockHz   float64 // core frequency
	SMTFactor float64 // per-thread throughput factor when the sibling thread is busy

	// Cache/memory access penalties in cycles beyond an L1 hit, used by
	// the CPI model.
	L2Penalty, L3Penalty, MemPenalty float64

	// OSNoise is the mean background system CPU usage, as a fraction of
	// one hardware thread (emulates OS jitter; sampled with jitter).
	OSNoise float64

	// BaselineResident is memory used by the OS and services at boot.
	BaselineResident units.ByteSize
}

// Threads returns the number of hardware threads (logical CPUs).
func (s MachineSpec) Threads() int { return s.Sockets * s.CoresPerSocket * s.ThreadsPerCore }

// PhysCores returns the number of physical cores.
func (s MachineSpec) PhysCores() int { return s.Sockets * s.CoresPerSocket }

// CoreOf maps a logical CPU to its physical core. Numbering follows the
// Linux convention on the testbeds: CPUs [0,P) are thread 0 of each core,
// CPUs [P,2P) are the SMT siblings, and so on.
func (s MachineSpec) CoreOf(cpu int) int { return cpu % s.PhysCores() }

// SocketOf maps a logical CPU to its socket.
func (s MachineSpec) SocketOf(cpu int) int { return s.CoreOf(cpu) / s.CoresPerSocket }

// Sibling returns the other logical CPU sharing the same physical core
// (assuming ThreadsPerCore == 2), or cpu itself when SMT is off.
func (s MachineSpec) Sibling(cpu int) int {
	if s.ThreadsPerCore < 2 {
		return cpu
	}
	p := s.PhysCores()
	if cpu < p {
		return cpu + p
	}
	return cpu - p
}

// Voltrino returns the spec of a Voltrino Haswell node: two Intel Xeon
// E5-2698 v3 processors (16 cores/socket, SMT2) and 125 GB of memory.
func Voltrino() MachineSpec {
	return MachineSpec{
		Name:             "voltrino",
		Sockets:          2,
		CoresPerSocket:   16,
		ThreadsPerCore:   2,
		L1:               32 * units.KiB,
		L2:               256 * units.KiB,
		L3:               40 * units.MiB,
		Memory:           125 * units.GiB,
		MemBWPerSocket:   units.Rate(60 * float64(units.GBPS)),
		ClockHz:          2.3e9,
		SMTFactor:        0.65,
		L2Penalty:        8,
		L3Penalty:        30,
		MemPenalty:       140,
		OSNoise:          0.012,
		BaselineResident: 7 * units.GiB,
	}
}

// ChameleonCloud returns the spec of a Chameleon Cloud bare-metal node:
// two Intel Xeon E5-2670 v3 processors (12 cores/socket, SMT2), 125 GB of
// memory, and a smaller L3 than Voltrino.
func ChameleonCloud() MachineSpec {
	return MachineSpec{
		Name:             "chameleon",
		Sockets:          2,
		CoresPerSocket:   12,
		ThreadsPerCore:   2,
		L1:               32 * units.KiB,
		L2:               256 * units.KiB,
		L3:               20 * units.MiB,
		Memory:           125 * units.GiB,
		MemBWPerSocket:   units.Rate(52 * float64(units.GBPS)),
		ClockHz:          2.3e9,
		SMTFactor:        0.65,
		L2Penalty:        8,
		L3Penalty:        34,
		MemPenalty:       160,
		OSNoise:          0.015,
		BaselineResident: 7 * units.GiB,
	}
}
