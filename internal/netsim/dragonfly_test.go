package netsim

import (
	"math"
	"testing"
)

func dfly() *Network { return New(Dragonfly(4, 4, 4)) } // 16 switches, 64 nodes

func TestDragonflyGeometry(t *testing.T) {
	cfg := Dragonfly(4, 4, 4)
	if cfg.Nodes() != 64 || cfg.Switches != 16 {
		t.Fatalf("geometry: %d nodes, %d switches", cfg.Nodes(), cfg.Switches)
	}
	if cfg.groupOf(0) != 0 || cfg.groupOf(3) != 0 || cfg.groupOf(4) != 1 || cfg.groupOf(15) != 3 {
		t.Error("groupOf wrong")
	}
	if cfg.groupSize() != 4 {
		t.Error("groupSize wrong")
	}
}

func TestDragonflyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for indivisible groups")
		}
	}()
	New(Config{Switches: 10, NodesPerSwitch: 2, Groups: 3, NICBW: 1e9, LinkBW: 1e9})
}

func TestDragonflyLocalityHierarchy(t *testing.T) {
	// Bandwidth should degrade with distance: same switch >= same group
	// >= cross group (the global link is the narrowest resource).
	measure := func(src, dst int) float64 {
		nw := dfly()
		f := &Flow{Src: src, Dst: dst, Demand: math.Inf(1)}
		nw.Resolve([]*Flow{f})
		return f.Granted
	}
	sameSwitch := measure(0, 1)  // switch 0
	sameGroup := measure(0, 4)   // switches 0,1 in group 0
	crossGroup := measure(0, 16) // group 0 -> group 1
	if sameSwitch < sameGroup || sameGroup < crossGroup {
		t.Errorf("locality hierarchy broken: %v, %v, %v", sameSwitch, sameGroup, crossGroup)
	}
	if crossGroup <= 0 {
		t.Error("cross-group flow starved")
	}
}

func TestDragonflyGlobalLinkContention(t *testing.T) {
	// Many flows between the same two groups share the single direct
	// global link; Valiant spreading over the other groups bounds the
	// collapse, exactly like the intra-chassis adaptive routing.
	nw := dfly()
	var flows []*Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, &Flow{Src: i * 4, Dst: 16 + i*4, Demand: math.Inf(1)})
	}
	nw.Resolve(flows)
	var total float64
	for _, f := range flows {
		if f.Granted <= 0 {
			t.Fatal("flow starved")
		}
		total += f.Granted
	}
	// Direct global link alone is 4.7 GB/s; with Valiant over 2
	// intermediate groups the aggregate must exceed it.
	if total <= 4.7e9 {
		t.Errorf("Valiant routing unused: aggregate %v", total)
	}
	// But the two-level topology must still be the bottleneck vs NICs.
	if total >= 4*10e9 {
		t.Error("global level should constrain aggregate bandwidth")
	}
}

func TestDragonflyNonAdaptiveCollapses(t *testing.T) {
	cfg := Dragonfly(4, 4, 4)
	cfg.Adaptive = false
	nw := New(cfg)
	a := &Flow{Src: 0, Dst: 16, Demand: math.Inf(1)}
	b := &Flow{Src: 4, Dst: 20, Demand: math.Inf(1)}
	nw.Resolve([]*Flow{a, b})
	// Both flows cross group 0 -> group 1 on the single global link.
	if sum := a.Granted + b.Granted; sum > 4.7e9*1.01 {
		t.Errorf("minimal-only routing oversubscribed the global link: %v", sum)
	}
}

func TestDragonflyIntraGroupUnaffectedByGlobalTraffic(t *testing.T) {
	nw := dfly()
	local := &Flow{Src: 0, Dst: 12, Demand: math.Inf(1)}  // group 0 internal
	remote := &Flow{Src: 1, Dst: 17, Demand: math.Inf(1)} // group 0 -> 1
	nw.Resolve([]*Flow{local, remote})
	aloneNW := dfly()
	alone := &Flow{Src: 0, Dst: 12, Demand: math.Inf(1)}
	aloneNW.Resolve([]*Flow{alone})
	if local.Granted < alone.Granted*0.5 {
		t.Errorf("global traffic crushed local flow: %v vs %v", local.Granted, alone.Granted)
	}
}

func TestDragonflyNoOversubscription(t *testing.T) {
	nw := dfly()
	var flows []*Flow
	for i := 0; i < 24; i++ {
		flows = append(flows, &Flow{Src: (i * 3) % 64, Dst: (i*7 + 16) % 64, Demand: math.Inf(1)})
	}
	nw.Resolve(flows)
	load := make(map[int]float64)
	for _, f := range flows {
		if f.Granted == 0 || f.Src == f.Dst {
			continue
		}
		for _, u := range nw.route(f) {
			load[u.link] += u.weight * f.Granted
		}
	}
	for link, l := range load {
		if l > nw.capacity[link]*(1+1e-6)+10 {
			t.Errorf("link %d oversubscribed: %v > %v", link, l, nw.capacity[link])
		}
	}
}
