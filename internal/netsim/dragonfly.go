package netsim

import "fmt"

// Dragonfly returns a two-level dragonfly topology like a full-scale
// Cray Aries system: switches are partitioned into groups, every switch
// pair within a group is directly connected (the electrical level), and
// every group pair is connected by one global (optical) link. Adaptive
// routing applies Valiant spreading at both levels.
//
// The paper's Voltrino is a single-group XC40m; Dragonfly lets the
// substrate reproduce the inter-group congestion studied by the dragonfly
// papers the paper builds on (Bhatele et al.).
func Dragonfly(groups, switchesPerGroup, nodesPerSwitch int) Config {
	return Config{
		Switches:       groups * switchesPerGroup,
		NodesPerSwitch: nodesPerSwitch,
		NICBW:          10e9,
		LinkBW:         5e9,
		GlobalBW:       4.7e9,
		Groups:         groups,
		Adaptive:       true,
		MinimalBias:    0.2,
	}
}

// groupOf returns the group of a switch (0 when the topology is flat).
func (c Config) groupOf(sw int) int {
	if c.Groups <= 1 {
		return 0
	}
	return sw / (c.Switches / c.Groups)
}

// groupSize returns switches per group.
func (c Config) groupSize() int {
	if c.Groups <= 1 {
		return c.Switches
	}
	return c.Switches / c.Groups
}

// validateGroups panics on an inconsistent group layout.
func (c Config) validateGroups() {
	if c.Groups <= 1 {
		return
	}
	if c.Switches%c.Groups != 0 {
		panic(fmt.Sprintf("netsim: %d switches not divisible into %d groups", c.Switches, c.Groups))
	}
	if c.groupSize() < 2 {
		panic("netsim: dragonfly groups need at least 2 switches")
	}
}

// globalLink returns the link id of the (directed) global link between
// two groups.
func (nw *Network) globalLink(ga, gb int) int {
	return nw.glBase + ga*nw.cfg.Groups + gb
}

// routeDragonfly computes the fractional route of an inter-group flow:
// MinimalBias of the traffic takes the minimal path (local hop to the
// gateway, one global link, local hop to the destination switch); the
// remainder is spread Valiant-style over all intermediate groups, each
// indirect path consuming two global links.
func (nw *Network) routeDragonfly(f *Flow, uses []use) []use {
	cfg := nw.cfg
	sa, sb := cfg.SwitchOf(f.Src), cfg.SwitchOf(f.Dst)
	ga, gb := cfg.groupOf(sa), cfg.groupOf(sb)

	bias := cfg.MinimalBias
	if !cfg.Adaptive || cfg.Groups <= 2 {
		bias = 1
	}

	// Minimal path: local links to/from the gateways plus the direct
	// global link. Gateways are modelled implicitly: local traffic to a
	// gateway uses one intra-group link on each side (approximated as a
	// generic intra-group hop from the source/destination switch).
	addLocalHop := func(from int, w float64) {
		// One intra-group hop toward the group's gateway, spread over
		// the group's other switches to model per-packet dispersion.
		size := cfg.groupSize()
		base := cfg.groupOf(from) * size
		spread := w / float64(size-1)
		for s := base; s < base+size; s++ {
			if s != from {
				uses = append(uses, use{nw.swLink(from, s), spread})
			}
		}
	}
	addLocalHop(sa, 1)
	addLocalHop(sb, 1) // symmetric return-side hop (capacity per direction)

	uses = append(uses, use{nw.globalLink(ga, gb), bias})
	if bias < 1 {
		nMid := cfg.Groups - 2
		w := (1 - bias) / float64(nMid)
		for g := 0; g < cfg.Groups; g++ {
			if g == ga || g == gb {
				continue
			}
			uses = append(uses,
				use{nw.globalLink(ga, g), w},
				use{nw.globalLink(g, gb), w})
		}
	}
	return uses
}
