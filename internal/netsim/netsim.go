// Package netsim models the high-speed interconnect of the simulated
// cluster: an Aries-like topology with a configurable number of switches,
// a fixed number of nodes per switch, all-to-all inter-switch links, and
// per-packet adaptive routing.
//
// Adaptive routing is modelled fractionally: a flow between different
// switches places MinimalBias of its traffic on the direct inter-switch
// link and spreads the remainder evenly over all two-hop (Valiant) paths.
// Bandwidth is then allocated max-min fairly under those fractional link
// weights with per-flow demand caps, via progressive filling. This
// reproduces the paper's Figure 6 observation that redundant links plus
// adaptive routing bound the damage network anomalies can do.
package netsim

import (
	"fmt"
	"math"
)

// Config describes the interconnect.
type Config struct {
	Switches       int     // number of switches (routers)
	NodesPerSwitch int     // compute nodes attached to each switch
	NICBW          float64 // bytes/s injection/ejection bandwidth per node
	LinkBW         float64 // bytes/s per directed inter-switch link
	Adaptive       bool    // spread traffic over two-hop paths
	MinimalBias    float64 // fraction of traffic kept on the direct link when Adaptive
	// Groups partitions the switches into a two-level dragonfly when
	// > 1 (see Dragonfly); 0 or 1 keeps a flat all-to-all switch fabric.
	Groups int
	// GlobalBW is the per-direction bandwidth of each inter-group
	// (optical) link when Groups > 1.
	GlobalBW float64
}

// Voltrino returns an interconnect resembling the paper's Cray XC40m test
// system: 4 nodes per switch, highly redundant inter-switch connectivity,
// and adaptive routing that keeps only a small bias on the minimal path.
func Voltrino() Config {
	return Config{
		Switches:       12,
		NodesPerSwitch: 4,
		NICBW:          10e9,
		LinkBW:         5e9,
		Adaptive:       true,
		MinimalBias:    0.2,
	}
}

// Star returns a single-switch topology like Chameleon Cloud's star
// network, where contention can only occur at the NICs.
func Star(nodes int) Config {
	return Config{
		Switches:       1,
		NodesPerSwitch: nodes,
		NICBW:          10e9,
		LinkBW:         10e9,
		Adaptive:       false,
		MinimalBias:    1,
	}
}

// Nodes returns the total number of attached compute nodes.
func (c Config) Nodes() int { return c.Switches * c.NodesPerSwitch }

// SwitchOf returns the switch a node attaches to.
func (c Config) SwitchOf(nodeID int) int { return nodeID / c.NodesPerSwitch }

// Flow is one unidirectional traffic stream between two nodes. Demand is
// the offered load in bytes/s (use math.Inf(1) for an elastic bulk flow);
// Granted is filled in by Resolve.
type Flow struct {
	Src, Dst int     // node ids
	Demand   float64 // offered bytes/s
	Granted  float64 // allocated bytes/s (output)
}

// link identifiers: injection links are [0,N), ejection links [N,2N),
// inter-switch links follow, one per ordered switch pair.
type Network struct {
	cfg      Config
	capacity []float64 // static capacity per link id
	nInj     int
	swBase   int
	glBase   int

	// per-Resolve scratch
	remaining []float64
	injected  []float64 // bytes/s currently injected per node (for counters)
	ejected   []float64
}

// New builds the network. It panics on a non-positive geometry.
func New(cfg Config) *Network {
	if cfg.Switches <= 0 || cfg.NodesPerSwitch <= 0 {
		panic(fmt.Sprintf("netsim: bad geometry %+v", cfg))
	}
	if cfg.MinimalBias <= 0 || cfg.MinimalBias > 1 {
		cfg.MinimalBias = 1
	}
	cfg.validateGroups()
	n := cfg.Nodes()
	nLinks := 2*n + cfg.Switches*cfg.Switches
	glBase := nLinks
	if cfg.Groups > 1 {
		nLinks += cfg.Groups * cfg.Groups
	}
	net := &Network{
		cfg:      cfg,
		capacity: make([]float64, nLinks),
		nInj:     n,
		swBase:   2 * n,
		glBase:   glBase,
		injected: make([]float64, n),
		ejected:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		net.capacity[i] = cfg.NICBW   // injection
		net.capacity[n+i] = cfg.NICBW // ejection
	}
	// Electrical level: all-to-all within a group (the whole fabric when
	// the topology is flat).
	for a := 0; a < cfg.Switches; a++ {
		for b := 0; b < cfg.Switches; b++ {
			if a != b && cfg.groupOf(a) == cfg.groupOf(b) {
				net.capacity[net.swLink(a, b)] = cfg.LinkBW
			}
		}
	}
	// Optical level: one link per ordered group pair.
	if cfg.Groups > 1 {
		gbw := cfg.GlobalBW
		if gbw <= 0 {
			gbw = cfg.LinkBW
		}
		for a := 0; a < cfg.Groups; a++ {
			for b := 0; b < cfg.Groups; b++ {
				if a != b {
					net.capacity[net.globalLink(a, b)] = gbw
				}
			}
		}
	}
	return net
}

// Config returns the network configuration.
func (nw *Network) Config() Config { return nw.cfg }

func (nw *Network) swLink(a, b int) int { return nw.swBase + a*nw.cfg.Switches + b }

// use is one (link, weight) pair of a flow's fractional route.
type use struct {
	link   int
	weight float64
}

// route returns the fractional link uses for a flow.
func (nw *Network) route(f *Flow) []use {
	cfg := nw.cfg
	uses := []use{{f.Src, 1}, {nw.nInj + f.Dst, 1}}
	sa, sb := cfg.SwitchOf(f.Src), cfg.SwitchOf(f.Dst)
	if sa == sb {
		return uses
	}
	if cfg.Groups > 1 && cfg.groupOf(sa) != cfg.groupOf(sb) {
		return nw.routeDragonfly(f, uses)
	}
	// Intra-group (or flat fabric): direct link plus Valiant spreading
	// over the group's other switches.
	size := cfg.groupSize()
	base := cfg.groupOf(sa) * size
	bias := cfg.MinimalBias
	if !cfg.Adaptive || size <= 2 {
		bias = 1
	}
	uses = append(uses, use{nw.swLink(sa, sb), bias})
	if bias < 1 {
		nMid := size - 2
		w := (1 - bias) / float64(nMid)
		for m := base; m < base+size; m++ {
			if m == sa || m == sb {
				continue
			}
			uses = append(uses, use{nw.swLink(sa, m), w}, use{nw.swLink(m, sb), w})
		}
	}
	return uses
}

// Resolve allocates bandwidth to the given flows max-min fairly and
// writes each flow's Granted field. Flows with non-positive demand get 0.
// It also records the per-node injected/ejected rates for NIC counters.
func (nw *Network) Resolve(flows []*Flow) {
	if cap(nw.remaining) < len(nw.capacity) {
		nw.remaining = make([]float64, len(nw.capacity))
	}
	rem := nw.remaining[:len(nw.capacity)]
	copy(rem, nw.capacity)
	for i := range nw.injected {
		nw.injected[i] = 0
		nw.ejected[i] = 0
	}

	type state struct {
		flow   *Flow
		uses   []use
		rate   float64
		active bool
	}
	states := make([]state, 0, len(flows))
	for _, f := range flows {
		f.Granted = 0
		if f.Demand <= 0 {
			continue
		}
		if f.Src == f.Dst || f.Src < 0 || f.Dst < 0 || f.Src >= nw.nInj || f.Dst >= nw.nInj {
			continue
		}
		states = append(states, state{flow: f, uses: nw.route(f), active: true})
	}

	// Progressive filling: raise all active flows' rates by the largest
	// uniform increment no link or demand permits exceeding, then retire
	// saturated flows. Each iteration retires at least one flow or link,
	// so this terminates in O(flows + links) rounds.
	const eps = 1e-6
	for {
		// Weighted active count per link.
		nActive := 0
		linkWeight := make(map[int]float64)
		for i := range states {
			if !states[i].active {
				continue
			}
			nActive++
			for _, u := range states[i].uses {
				linkWeight[u.link] += u.weight
			}
		}
		if nActive == 0 {
			break
		}
		delta := math.Inf(1)
		for link, w := range linkWeight {
			if w > 0 {
				if d := rem[link] / w; d < delta {
					delta = d
				}
			}
		}
		for i := range states {
			if states[i].active {
				if d := states[i].flow.Demand - states[i].rate; d < delta {
					delta = d
				}
			}
		}
		if delta < 0 {
			delta = 0
		}
		// Apply the increment.
		for i := range states {
			if !states[i].active {
				continue
			}
			states[i].rate += delta
			for _, u := range states[i].uses {
				rem[u.link] -= delta * u.weight
			}
		}
		// Retire demand-satisfied flows and flows on saturated links.
		progressed := false
		for i := range states {
			if !states[i].active {
				continue
			}
			if states[i].rate >= states[i].flow.Demand-eps {
				states[i].active = false
				progressed = true
				continue
			}
			for _, u := range states[i].uses {
				if u.weight > 0 && rem[u.link] <= eps {
					states[i].active = false
					progressed = true
					break
				}
			}
		}
		if !progressed && delta <= eps {
			// Numerical stall: freeze everything.
			for i := range states {
				states[i].active = false
			}
		}
	}

	for i := range states {
		f := states[i].flow
		f.Granted = states[i].rate
		nw.injected[f.Src] += f.Granted
		nw.ejected[f.Dst] += f.Granted
	}
}

// InjectedRate returns the bytes/s most recently injected by the node's
// NIC, for monitoring counters.
func (nw *Network) InjectedRate(nodeID int) float64 { return nw.injected[nodeID] }

// EjectedRate returns the bytes/s most recently delivered to the node.
func (nw *Network) EjectedRate(nodeID int) float64 { return nw.ejected[nodeID] }
