package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	cfg := Voltrino()
	if cfg.Nodes() != 48 {
		t.Fatalf("Nodes = %d", cfg.Nodes())
	}
	if cfg.SwitchOf(0) != 0 || cfg.SwitchOf(3) != 0 || cfg.SwitchOf(4) != 1 || cfg.SwitchOf(47) != 11 {
		t.Error("SwitchOf wrong")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Switches: 0, NodesPerSwitch: 4})
}

func TestSameSwitchFlowNICBound(t *testing.T) {
	nw := New(Voltrino())
	f := &Flow{Src: 0, Dst: 1, Demand: math.Inf(1)}
	nw.Resolve([]*Flow{f})
	if math.Abs(f.Granted-nw.Config().NICBW) > 1e3 {
		t.Errorf("Granted = %v, want NIC bw %v", f.Granted, nw.Config().NICBW)
	}
}

func TestDemandCap(t *testing.T) {
	nw := New(Voltrino())
	f := &Flow{Src: 0, Dst: 1, Demand: 1e9}
	nw.Resolve([]*Flow{f})
	if math.Abs(f.Granted-1e9) > 1e3 {
		t.Errorf("Granted = %v, want demand 1e9", f.Granted)
	}
}

func TestInvalidFlowsGetZero(t *testing.T) {
	nw := New(Voltrino())
	flows := []*Flow{
		{Src: 0, Dst: 0, Demand: 1e9},   // self
		{Src: -1, Dst: 1, Demand: 1e9},  // bad src
		{Src: 0, Dst: 999, Demand: 1e9}, // bad dst
		{Src: 0, Dst: 1, Demand: 0},     // no demand
	}
	nw.Resolve(flows)
	for i, f := range flows {
		if f.Granted != 0 {
			t.Errorf("flow %d granted %v, want 0", i, f.Granted)
		}
	}
}

func TestCrossSwitchElasticFlow(t *testing.T) {
	nw := New(Voltrino())
	f := &Flow{Src: 0, Dst: 4, Demand: math.Inf(1)} // switch 0 -> switch 1
	nw.Resolve([]*Flow{f})
	// Adaptive routing gives min(NIC, direct/bias) = min(10, 25) GB/s.
	if math.Abs(f.Granted-10e9) > 1e6 {
		t.Errorf("Granted = %v, want 10e9", f.Granted)
	}
}

func TestNonAdaptiveDirectOnly(t *testing.T) {
	cfg := Voltrino()
	cfg.Adaptive = false
	nw := New(cfg)
	f := &Flow{Src: 0, Dst: 4, Demand: math.Inf(1)}
	nw.Resolve([]*Flow{f})
	// All traffic on the 5 GB/s direct link.
	if math.Abs(f.Granted-5e9) > 1e6 {
		t.Errorf("Granted = %v, want 5e9", f.Granted)
	}
}

func TestEqualFlowsFairShare(t *testing.T) {
	nw := New(Voltrino())
	// Two same-switch flows sharing one destination NIC.
	a := &Flow{Src: 0, Dst: 2, Demand: math.Inf(1)}
	b := &Flow{Src: 1, Dst: 2, Demand: math.Inf(1)}
	nw.Resolve([]*Flow{a, b})
	if math.Abs(a.Granted-b.Granted) > 1e3 {
		t.Errorf("unequal shares: %v vs %v", a.Granted, b.Granted)
	}
	if math.Abs(a.Granted+b.Granted-nw.Config().NICBW) > 1e3 {
		t.Errorf("NIC not fully used: %v", a.Granted+b.Granted)
	}
}

func TestFig6ShapeMonotoneReduction(t *testing.T) {
	// An OSU-like flow across switches, plus k elastic anomaly pairs on
	// the same switch pair: OSU bandwidth must fall monotonically with k
	// but stay well above the non-adaptive direct-link share.
	osuDemand := 9.5e9
	prev := math.Inf(1)
	var got []float64
	for k := 0; k <= 3; k++ {
		nw := New(Voltrino())
		flows := []*Flow{{Src: 0, Dst: 4, Demand: osuDemand}}
		for i := 0; i < k; i++ {
			flows = append(flows, &Flow{Src: 1 + i, Dst: 5 + i, Demand: math.Inf(1)})
		}
		nw.Resolve(flows)
		g := flows[0].Granted
		got = append(got, g)
		if g > prev+1e3 {
			t.Errorf("k=%d: OSU bandwidth rose: %v > %v", k, g, prev)
		}
		prev = g
	}
	if got[0] < osuDemand-1e6 {
		t.Errorf("clean OSU run should reach demand, got %v", got[0])
	}
	if got[3] >= got[0] {
		t.Error("3 anomaly pairs should reduce OSU bandwidth")
	}
	// Adaptive routing limits the damage: better than the direct-only share.
	if got[3] < 2e9 {
		t.Errorf("reduction too severe for adaptive routing: %v", got[3])
	}
}

func TestStarTopology(t *testing.T) {
	nw := New(Star(6))
	f := &Flow{Src: 0, Dst: 5, Demand: math.Inf(1)}
	nw.Resolve([]*Flow{f})
	if math.Abs(f.Granted-nw.Config().NICBW) > 1e3 {
		t.Errorf("star flow = %v", f.Granted)
	}
}

func TestCounters(t *testing.T) {
	nw := New(Voltrino())
	a := &Flow{Src: 0, Dst: 4, Demand: 2e9}
	b := &Flow{Src: 0, Dst: 5, Demand: 1e9}
	nw.Resolve([]*Flow{a, b})
	if math.Abs(nw.InjectedRate(0)-3e9) > 1e4 {
		t.Errorf("InjectedRate(0) = %v", nw.InjectedRate(0))
	}
	if math.Abs(nw.EjectedRate(4)-2e9) > 1e4 {
		t.Errorf("EjectedRate(4) = %v", nw.EjectedRate(4))
	}
	if nw.InjectedRate(7) != 0 {
		t.Error("idle node should inject 0")
	}
	// Counters reset between Resolve calls.
	nw.Resolve(nil)
	if nw.InjectedRate(0) != 0 {
		t.Error("counters not reset")
	}
}

// Property: no link is ever oversubscribed, and grants never exceed demand.
func TestNoOversubscriptionProperty(t *testing.T) {
	f := func(pairs []struct{ S, D uint8 }, demRaw []uint8) bool {
		cfg := Voltrino()
		nw := New(cfg)
		var flows []*Flow
		for i, p := range pairs {
			if i >= 12 {
				break
			}
			d := math.Inf(1)
			if i < len(demRaw) && demRaw[i]%2 == 0 {
				d = float64(demRaw[i]) * 1e8
			}
			flows = append(flows, &Flow{
				Src:    int(p.S) % cfg.Nodes(),
				Dst:    int(p.D) % cfg.Nodes(),
				Demand: d,
			})
		}
		nw.Resolve(flows)
		// Recompute link loads from grants.
		load := make(map[int]float64)
		for _, fl := range flows {
			if fl.Granted < 0 || fl.Granted > fl.Demand+1 {
				return false
			}
			if fl.Granted == 0 {
				continue
			}
			for _, u := range nw.route(fl) {
				load[u.link] += u.weight * fl.Granted
			}
		}
		for link, l := range load {
			if l > nw.capacity[link]*(1+1e-6)+10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkResolve16Flows(b *testing.B) {
	nw := New(Voltrino())
	var flows []*Flow
	for i := 0; i < 16; i++ {
		flows = append(flows, &Flow{Src: i % 48, Dst: (i + 7) % 48, Demand: math.Inf(1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Resolve(flows)
	}
}
