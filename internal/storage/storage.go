// Package storage models the shared filesystem of the simulated cluster:
// a metadata service with a finite operation rate and one or more storage
// servers whose disks degrade under concurrent streams.
//
// Two stock configurations mirror the paper's testbeds: a Lustre-like
// filesystem with a dedicated metadata server (Voltrino) and an NFS-like
// single-server share where metadata operations steal disk time from data
// streams (the Chameleon Cloud appliance used for Figure 7).
package storage

import "fmt"

// Config describes a shared filesystem.
type Config struct {
	Name string
	// MetaOpsPerSec is the metadata service capacity (creates, opens,
	// stats, unlinks per second).
	MetaOpsPerSec float64
	// DiskBW is the aggregate sequential bandwidth of the storage
	// server's disks, bytes/s.
	DiskBW float64
	// SeekPenalty controls degradation under n concurrent streams:
	// effective bandwidth = DiskBW / (1 + SeekPenalty*(n-1)). Spinning
	// disks have a large penalty; striped SSD arrays a small one.
	SeekPenalty float64
	// SharedMetaData is true when metadata operations are served by the
	// same disk as data (NFS with a single disk): each metadata op then
	// consumes MetaOpDiskCost seconds of disk time.
	SharedMetaData bool
	// MetaOpDiskCost is the disk time per metadata op when
	// SharedMetaData is set (a small seek+journal write).
	MetaOpDiskCost float64
}

// Lustre returns a filesystem resembling Voltrino's Lustre: a dedicated
// metadata server and striped storage targets.
func Lustre() Config {
	return Config{
		Name:          "lustre",
		MetaOpsPerSec: 25000,
		DiskBW:        4e9,
		SeekPenalty:   0.02,
	}
}

// NFS returns a filesystem resembling the Chameleon Cloud "NFS share"
// appliance: one server with a single 250 GB spinning disk (~120 MB/s
// sequential) serving both data and metadata with 24 service threads.
func NFS() Config {
	return Config{
		Name:           "nfs",
		MetaOpsPerSec:  6000,
		DiskBW:         120e6,
		SeekPenalty:    0.15,
		SharedMetaData: true,
		MetaOpDiskCost: 1e-4,
	}
}

// Demand is one client's offered filesystem load for a tick.
type Demand struct {
	MetaOps float64 // metadata ops/s offered
	Read    float64 // bytes/s offered
	Write   float64 // bytes/s offered
}

// Grant is the served fraction of a client's demand.
type Grant struct {
	MetaOps float64 // ops/s served
	Read    float64 // bytes/s served
	Write   float64 // bytes/s served
}

// Server is the shared filesystem service.
type Server struct {
	cfg Config

	// cumulative counters for monitoring
	metaOpsServed float64
	bytesRead     float64
	bytesWritten  float64
}

// New returns a server with the given configuration. It panics on
// non-positive capacities.
func New(cfg Config) *Server {
	if cfg.MetaOpsPerSec <= 0 || cfg.DiskBW <= 0 {
		panic(fmt.Sprintf("storage: bad config %+v", cfg))
	}
	return &Server{cfg: cfg}
}

// Config returns the server configuration.
func (s *Server) Config() Config { return s.cfg }

// Resolve serves the given demands for a dt-second tick and returns the
// per-client grants, in the same order.
//
// Metadata: offered ops are admitted proportionally up to the service
// rate. Data: the disk's effective bandwidth — reduced by stream
// concurrency and, for shared-metadata servers, by disk time consumed by
// metadata ops — is split proportionally to offered bytes.
func (s *Server) Resolve(demands []Demand, dt float64) []Grant {
	grants := make([]Grant, len(demands))

	var totalMeta, totalData float64
	streams := 0
	for _, d := range demands {
		totalMeta += d.MetaOps
		totalData += d.Read + d.Write
		if d.Read+d.Write > 0 {
			streams++
		}
	}

	// Metadata admission. On a shared-disk server, data streams keep the
	// disk heads busy and depress the achievable metadata rate too.
	metaCap := s.cfg.MetaOpsPerSec
	if s.cfg.SharedMetaData && totalData > 0 {
		dataBusy := totalData / s.cfg.DiskBW
		if dataBusy > 1 {
			dataBusy = 1
		}
		metaCap *= 1 - 0.8*dataBusy
	}
	metaFrac := 1.0
	if totalMeta > metaCap {
		metaFrac = metaCap / totalMeta
	}
	servedMeta := totalMeta * metaFrac

	// Effective disk bandwidth.
	diskBW := s.cfg.DiskBW
	if streams > 1 {
		diskBW /= 1 + s.cfg.SeekPenalty*float64(streams-1)
	}
	if s.cfg.SharedMetaData && servedMeta > 0 {
		// Disk time fraction consumed by metadata ops.
		busy := servedMeta * s.cfg.MetaOpDiskCost
		if busy > 0.95 {
			busy = 0.95
		}
		diskBW *= 1 - busy
	}
	dataFrac := 1.0
	if totalData > diskBW {
		dataFrac = diskBW / totalData
	}

	for i, d := range demands {
		grants[i] = Grant{
			MetaOps: d.MetaOps * metaFrac,
			Read:    d.Read * dataFrac,
			Write:   d.Write * dataFrac,
		}
		s.metaOpsServed += grants[i].MetaOps * dt
		s.bytesRead += grants[i].Read * dt
		s.bytesWritten += grants[i].Write * dt
	}
	return grants
}

// Counters returns cumulative served totals (ops, bytes read, bytes
// written) for monitoring.
func (s *Server) Counters() (metaOps, read, written float64) {
	return s.metaOpsServed, s.bytesRead, s.bytesWritten
}
