package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestSingleStreamFullBandwidth(t *testing.T) {
	s := New(NFS())
	g := s.Resolve([]Demand{{Write: 50e6}}, 1)
	if math.Abs(g[0].Write-50e6) > 1 {
		t.Errorf("Write = %v, want full demand", g[0].Write)
	}
}

func TestDiskSaturation(t *testing.T) {
	s := New(NFS())
	g := s.Resolve([]Demand{{Write: 500e6}}, 1)
	if g[0].Write > s.Config().DiskBW+1 {
		t.Errorf("Write %v exceeds disk bw", g[0].Write)
	}
	if g[0].Write < 100e6 {
		t.Errorf("single stream should get near-full disk bw, got %v", g[0].Write)
	}
}

func TestConcurrencyPenalty(t *testing.T) {
	s := New(NFS())
	// 20 concurrent streams each demanding far more than their share.
	demands := make([]Demand, 20)
	for i := range demands {
		demands[i] = Demand{Read: 100e6}
	}
	g := s.Resolve(demands, 1)
	var total float64
	for _, gr := range g {
		total += gr.Read
	}
	if total >= s.Config().DiskBW {
		t.Errorf("concurrent total %v should be below sequential bw", total)
	}
	// Equal demands get equal shares.
	if math.Abs(g[0].Read-g[19].Read) > 1 {
		t.Error("unequal shares for equal demands")
	}
}

func TestMetadataAdmission(t *testing.T) {
	s := New(NFS())
	g := s.Resolve([]Demand{{MetaOps: 100}, {MetaOps: 100000}}, 1)
	served := g[0].MetaOps + g[1].MetaOps
	if served > s.Config().MetaOpsPerSec+1 {
		t.Errorf("meta served %v exceeds capacity", served)
	}
	// Proportional split.
	ratio := g[1].MetaOps / g[0].MetaOps
	if math.Abs(ratio-1000) > 1 {
		t.Errorf("meta split ratio = %v, want 1000", ratio)
	}
}

func TestSharedMetadataStealsDiskTime(t *testing.T) {
	s := New(NFS())
	clean := s.Resolve([]Demand{{Write: 500e6}}, 1)[0].Write
	// Now with a metadata flood from another client.
	g := s.Resolve([]Demand{{Write: 500e6}, {MetaOps: 50000}}, 1)
	if g[0].Write >= clean {
		t.Errorf("metadata flood should reduce data bw: %v vs clean %v", g[0].Write, clean)
	}
}

func TestDataStreamsDepressMetadataOnNFS(t *testing.T) {
	s := New(NFS())
	clean := s.Resolve([]Demand{{MetaOps: 100000}}, 1)[0].MetaOps
	g := s.Resolve([]Demand{{MetaOps: 100000}, {Write: 500e6}}, 1)
	if g[0].MetaOps >= clean {
		t.Errorf("busy disk should depress metadata rate: %v vs %v", g[0].MetaOps, clean)
	}
}

func TestLustreSeparateMetadata(t *testing.T) {
	s := New(Lustre())
	clean := s.Resolve([]Demand{{Write: 10e9}}, 1)[0].Write
	g := s.Resolve([]Demand{{Write: 10e9}, {MetaOps: 100000}}, 1)
	if math.Abs(g[0].Write-clean) > clean*0.01 {
		t.Errorf("dedicated MDS should isolate data bw: %v vs %v", g[0].Write, clean)
	}
}

func TestCountersAccumulate(t *testing.T) {
	s := New(NFS())
	s.Resolve([]Demand{{MetaOps: 10, Read: 1e6, Write: 2e6}}, 2)
	meta, read, written := s.Counters()
	if math.Abs(meta-20) > 1e-6 || math.Abs(read-2e6) > 1 || math.Abs(written-4e6) > 1 {
		t.Errorf("counters = %v %v %v", meta, read, written)
	}
}

func TestEmptyResolve(t *testing.T) {
	s := New(NFS())
	if g := s.Resolve(nil, 1); len(g) != 0 {
		t.Error("empty resolve should return empty grants")
	}
}

// Property: grants never exceed demands or capacities.
func TestGrantBoundsProperty(t *testing.T) {
	f := func(metaRaw, readRaw, writeRaw [6]uint32) bool {
		s := New(NFS())
		demands := make([]Demand, 6)
		for i := range demands {
			demands[i] = Demand{
				MetaOps: float64(metaRaw[i] % 100000),
				Read:    float64(readRaw[i]),
				Write:   float64(writeRaw[i]),
			}
		}
		grants := s.Resolve(demands, 1)
		var meta, data float64
		for i, g := range grants {
			if g.MetaOps > demands[i].MetaOps+1e-9 || g.Read > demands[i].Read+1e-9 || g.Write > demands[i].Write+1e-9 {
				return false
			}
			if g.MetaOps < 0 || g.Read < 0 || g.Write < 0 {
				return false
			}
			meta += g.MetaOps
			data += g.Read + g.Write
		}
		return meta <= s.Config().MetaOpsPerSec+1e-6 && data <= s.Config().DiskBW+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkResolve48Clients(b *testing.B) {
	s := New(NFS())
	demands := make([]Demand, 48)
	for i := range demands {
		demands[i] = Demand{MetaOps: 50, Read: 2e6, Write: 2e6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Resolve(demands, 0.1)
	}
}
