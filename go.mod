module hpas

go 1.22
