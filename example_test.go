package hpas_test

import (
	"fmt"

	"hpas"
)

// ExampleCatalog lists the anomaly generators of the paper's Table 1.
func ExampleCatalog() {
	for _, a := range hpas.Catalog() {
		fmt.Println(a.Name)
	}
	// Output:
	// cpuoccupy
	// cachecopy
	// membw
	// memeater
	// memleak
	// netoccupy
	// iometadata
	// iobandwidth
}

// ExampleRun measures the slowdown an anomaly inflicts on a proxy
// application running on the simulated cluster.
func ExampleRun() {
	base := hpas.RunConfig{
		Cluster:    hpas.VoltrinoConfig(4),
		App:        "CoMD",
		Iterations: 3,
		Seed:       1,
	}
	clean, err := hpas.Run(base)
	if err != nil {
		fmt.Println(err)
		return
	}
	dirty := base
	dirty.Anomalies = []hpas.Spec{{Name: "cachecopy", Node: 0, CPU: 32}}
	slowed, err := hpas.Run(dirty)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cachecopy slows CoMD: %v\n", slowed.Duration > 1.3*clean.Duration)
	// Output:
	// cachecopy slows CoMD: true
}

// ExampleWBAS shows the Well-Balanced Allocation Strategy avoiding an
// anomalous node.
func ExampleWBAS() {
	states := []hpas.NodeState{
		{ID: 0, Load: 0.9, MemFree: 2 * hpas.GiB}, // anomalous
		{ID: 1, Load: 0.01, MemFree: 118 * hpas.GiB},
		{ID: 2, Load: 0.01, MemFree: 118 * hpas.GiB},
		{ID: 3, Load: 0.01, MemFree: 118 * hpas.GiB},
	}
	nodes, _ := hpas.WBAS{}.Select(states, 2)
	fmt.Println(nodes)
	// Output:
	// [1 2]
}

// ExampleGreedyRefineLB balances objects over heterogeneous PEs.
func ExampleGreedyRefineLB() {
	objects := []float64{1, 1, 1, 1, 1, 1}
	capacities := []float64{1, 0.5} // PE 1 is half-occupied by an anomaly
	assignment, _ := hpas.GreedyRefineLB{}.Assign(objects, capacities)
	counts := make([]int, 2)
	for _, pe := range assignment {
		counts[pe]++
	}
	fmt.Printf("fast PE gets %d objects, slow PE gets %d\n", counts[0], counts[1])
	// Output:
	// fast PE gets 4 objects, slow PE gets 2
}
