// Package api holds the wire types of the hpas-serve HTTP API — the
// request and response bodies of the /v1 endpoints — in one place that
// both the server (hpas/serve) and the Go client (hpas/client) import,
// so the two cannot drift apart.
//
// The types are plain JSON-tagged structs with no behaviour: field
// semantics (defaults, validation) are the server's business and are
// documented here only as far as a client needs to build a request.
package api

import (
	"time"

	"hpas"
)

// JobRequest is the POST /v1/jobs body. A campaign is given either as
// the compact phase string hpas-sim uses ("cpuoccupy@10-40:95,...") or
// as structured Phases; omitting both runs a clean (anomaly-free) job.
type JobRequest struct {
	// Simulated machine and application.
	App          string  `json:"app,omitempty"`
	Nodes        int     `json:"nodes,omitempty"`          // cluster size (default 4)
	RanksPerNode int     `json:"ranks_per_node,omitempty"` // default: all physical cores
	Duration     float64 `json:"duration,omitempty"`       // observed seconds (default 120)
	SamplePeriod float64 `json:"sample_period,omitempty"`  // default 1 s
	Noise        float64 `json:"noise,omitempty"`          // default 0.01
	Seed         uint64  `json:"seed,omitempty"`

	// Anomaly campaign, compact or structured (not both).
	Campaign    string  `json:"campaign,omitempty"`
	AnomalyNode int     `json:"anomaly_node,omitempty"` // compact form target (default 0)
	AnomalyCPU  *int    `json:"anomaly_cpu,omitempty"`  // compact form pin (nil = default 32; explicit 0 is honored)
	Phases      []Phase `json:"phases,omitempty"`

	// Detection pipeline.
	WatchNodes []int   `json:"watch_nodes,omitempty"` // default: node 0
	Window     float64 `json:"window,omitempty"`      // default: detector window
	Stride     float64 `json:"stride,omitempty"`      // default: window (disjoint)
}

// Phase is one timed injection step of a structured campaign.
type Phase struct {
	Label    string      `json:"label"`
	Start    float64     `json:"start"`
	Duration float64     `json:"duration"`
	Specs    []SpecEntry `json:"specs"`
}

// SpecEntry is one anomaly injection within a phase.
type SpecEntry struct {
	Name      string  `json:"name"`
	Node      int     `json:"node"`
	CPU       int     `json:"cpu"`
	Intensity float64 `json:"intensity,omitempty"`
	Level     int     `json:"level,omitempty"` // cachecopy: 1..3
	Size      string  `json:"size,omitempty"`  // e.g. "8GiB"
	Limit     string  `json:"limit,omitempty"`
	Count     int     `json:"count,omitempty"`
	Peer      int     `json:"peer,omitempty"`
}

// JobStatus is the job representation returned by the status
// endpoints (and by POST /v1/jobs on acceptance).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// The timestamps are the documented RFC 3339 exception: clients in
	// every language parse that encoding, and the format is pinned by
	// the API doc, not by Go's marshaller choice.
	//lint:allow apitags documented RFC 3339 wire encoding
	Created time.Time `json:"created"`
	//lint:allow apitags documented RFC 3339 wire encoding
	Started *time.Time `json:"started,omitempty"`
	//lint:allow apitags documented RFC 3339 wire encoding
	Finished *time.Time         `json:"finished,omitempty"`
	Events   []hpas.StreamEvent `json:"events,omitempty"`
	Stream   string             `json:"stream"` // path of the job's message stream
}

// Final reports whether the status describes a terminal job.
func (s JobStatus) Final() bool {
	return hpas.StreamJobState(s.State).Final()
}

// JobList is the GET /v1/jobs response.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// IdempotencyKeyHeader names the POST /v1/jobs request header that
// makes submission retry-safe: submissions repeating a key return the
// first submission's job instead of creating a duplicate.
const IdempotencyKeyHeader = "Idempotency-Key"

// IdempotencyReplayedHeader is set to "true" on a POST /v1/jobs
// response that was answered by an existing job (the request's key had
// been seen before); such responses use 200 rather than 202.
const IdempotencyReplayedHeader = "Idempotency-Replayed"

// MaxIdempotencyKeyLen bounds the accepted key length; longer keys
// are rejected with 400.
const MaxIdempotencyKeyLen = 256
