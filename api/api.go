// Package api holds the wire types of the hpas-serve HTTP API — the
// request and response bodies of the /v1 endpoints — in one place that
// both the server (hpas/serve) and the Go client (hpas/client) import,
// so the two cannot drift apart.
//
// The types are plain JSON-tagged structs with no behaviour: field
// semantics (defaults, validation) are the server's business and are
// documented here only as far as a client needs to build a request.
package api

import (
	"time"

	"hpas"
)

// JobRequest is the POST /v1/jobs body. A campaign is given either as
// the compact phase string hpas-sim uses ("cpuoccupy@10-40:95,...") or
// as structured Phases; omitting both runs a clean (anomaly-free) job.
type JobRequest struct {
	// Simulated machine and application.
	App          string  `json:"app,omitempty"`
	Nodes        int     `json:"nodes,omitempty"`          // cluster size (default 4)
	RanksPerNode int     `json:"ranks_per_node,omitempty"` // default: all physical cores
	Duration     float64 `json:"duration,omitempty"`       // observed seconds (default 120)
	SamplePeriod float64 `json:"sample_period,omitempty"`  // default 1 s
	Noise        float64 `json:"noise,omitempty"`          // default 0.01
	Seed         uint64  `json:"seed,omitempty"`

	// Anomaly campaign, compact or structured (not both).
	Campaign    string  `json:"campaign,omitempty"`
	AnomalyNode int     `json:"anomaly_node,omitempty"` // compact form target (default 0)
	AnomalyCPU  *int    `json:"anomaly_cpu,omitempty"`  // compact form pin (nil = default 32; explicit 0 is honored)
	Phases      []Phase `json:"phases,omitempty"`

	// Detection pipeline.
	WatchNodes []int   `json:"watch_nodes,omitempty"` // default: node 0
	Window     float64 `json:"window,omitempty"`      // default: detector window
	Stride     float64 `json:"stride,omitempty"`      // default: window (disjoint)
}

// Phase is one timed injection step of a structured campaign.
type Phase struct {
	Label    string      `json:"label"`
	Start    float64     `json:"start"`
	Duration float64     `json:"duration"`
	Specs    []SpecEntry `json:"specs"`
}

// SpecEntry is one anomaly injection within a phase.
type SpecEntry struct {
	Name      string  `json:"name"`
	Node      int     `json:"node"`
	CPU       int     `json:"cpu"`
	Intensity float64 `json:"intensity,omitempty"`
	Level     int     `json:"level,omitempty"` // cachecopy: 1..3
	Size      string  `json:"size,omitempty"`  // e.g. "8GiB"
	Limit     string  `json:"limit,omitempty"`
	Count     int     `json:"count,omitempty"`
	Peer      int     `json:"peer,omitempty"`
}

// JobStatus is the job representation returned by the status
// endpoints (and by POST /v1/jobs on acceptance).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// The timestamps are the documented RFC 3339 exception: clients in
	// every language parse that encoding, and the format is pinned by
	// the API doc, not by Go's marshaller choice.
	//lint:allow apitags documented RFC 3339 wire encoding
	Created time.Time `json:"created"`
	//lint:allow apitags documented RFC 3339 wire encoding
	Started *time.Time `json:"started,omitempty"`
	//lint:allow apitags documented RFC 3339 wire encoding
	Finished *time.Time         `json:"finished,omitempty"`
	Events   []hpas.StreamEvent `json:"events,omitempty"`
	Stream   string             `json:"stream"` // path of the job's message stream
}

// Final reports whether the status describes a terminal job.
func (s JobStatus) Final() bool {
	return hpas.StreamJobState(s.State).Final()
}

// JobList is the GET /v1/jobs response.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// ShardHealth is the GET /v1/readyz (and /readyz) response body of one
// serving instance. The router (cmd/hpas-router) decodes it from every
// shard it health-checks; hpas-serve emits it directly.
type ShardHealth struct {
	Status          string `json:"status"`  // "ok" | "closing"
	Journal         string `json:"journal"` // "none" | "ok" | "degraded"
	Workers         int    `json:"workers"`
	JobsRunning     int64  `json:"jobs_running"`
	QueueDepth      int    `json:"queue_depth"`
	PanicsRecovered int64  `json:"panics_recovered"`
}

// ShardInfo is one member of a routed topology as the router sees it:
// identity, membership state, and the last health probe.
type ShardInfo struct {
	Name string `json:"name"`
	// Addr is the shard's base URL for remote shards; empty for
	// in-process shards sharing the router's address space.
	Addr  string `json:"addr,omitempty"`
	Alive bool   `json:"alive"`
	// State is the member's position in the membership state machine:
	// "alive" (probes passing, placement-eligible), "draining" (admin
	// asked it to leave; it serves its existing jobs but takes no new
	// placements), or "down" (demoted after failed probes).
	State string `json:"state,omitempty"`
	// Jobs counts the router-tracked jobs currently owned by this shard
	// (lost jobs keep pointing at the shard that lost them).
	Jobs                int         `json:"jobs"`
	ConsecutiveFailures int         `json:"consecutive_failures,omitempty"`
	LastError           string      `json:"last_error,omitempty"`
	Health              ShardHealth `json:"health"`
}

// RouterStats is the router's own counter block inside GET /v1/metrics
// and GET /v1/topology.
type RouterStats struct {
	JobsRouted      int64 `json:"jobs_routed"`      // submissions placed on a shard
	Replays         int64 `json:"replays"`          // submissions answered by an existing keyed route
	Resubmitted     int64 `json:"resubmitted"`      // queued jobs re-placed after a shard loss
	JobsLost        int64 `json:"jobs_lost"`        // running jobs finalized failed-by-shard-loss
	ShardsDown      int64 `json:"shards_down"`      // alive→down transitions observed
	ShardsRecovered int64 `json:"shards_recovered"` // down→alive transitions observed
	ShardsAlive     int   `json:"shards_alive"`
	RoutesTracked   int   `json:"routes_tracked"`

	// Dynamic-membership counters.
	Epoch            uint64 `json:"epoch"`             // current membership epoch
	MembersAdded     int64  `json:"members_added"`     // runtime admin joins
	MembersRemoved   int64  `json:"members_removed"`   // runtime admin removals (incl. completed drains)
	JobsHandedOff    int64  `json:"jobs_handed_off"`   // terminal histories migrated via journal handoff
	RoutesReclaimed  int64  `json:"routes_reclaimed"`  // routes rebound to a joining member that proved their history
	OrphansCancelled int64  `json:"orphans_cancelled"` // zombie job copies cancelled on member rejoin
	EpochConflicts   int64  `json:"epoch_conflicts"`   // divergence-probe routing refusals entered

	// Self-healing coordination counters.
	MutationsForwarded int64 `json:"mutations_forwarded"` // per-peer replication acks (applied or converged)
	ForwardsPending    int   `json:"forwards_pending"`    // (record, peer) forwards awaiting an ack
	EpochCatchUps      int64 `json:"epoch_catch_ups"`     // peer member lists adopted by the divergence probe
	StandbysPromoted   int64 `json:"standbys_promoted"`   // dead members auto-replaced from the standby pool
}

// Topology is the GET /v1/topology response and the canonical discovery
// document for clients of a routed deployment: the routing scheme, the
// membership version, and the member list with per-shard state, health,
// and probe-failure counts, plus the router counters. Clients that
// cache it should refresh whenever a response's Hpas-Epoch header
// exceeds the cached epoch (hpas/client does this automatically).
type Topology struct {
	// Hashing names the placement scheme; currently always
	// "rendezvous/fnv1a-64" (highest-random-weight hashing of the
	// router-assigned job ID over the alive member set).
	Hashing string `json:"hashing"`
	// Epoch is the membership version: monotonically increasing,
	// bumped by every admin membership mutation. Replicated routers
	// sharing a member list must agree on it; see MemberSpec.Epoch.
	Epoch uint64 `json:"epoch"`
	// MembersHash is a hex digest of the administered member-name set,
	// used by peer routers to detect same-epoch divergence.
	MembersHash string      `json:"members_hash,omitempty"`
	Shards      []ShardInfo `json:"shards"`
	Router      RouterStats `json:"router"`
}

// MemberSpec is the POST /v1/admin/members body: one shard joining the
// ring at runtime.
type MemberSpec struct {
	Name string `json:"name"`
	// Addr is the shard's base URL (runtime joins are remote shards).
	Addr string `json:"addr"`
	// Epoch, when nonzero, makes the mutation conditional: it must
	// equal the router's current membership epoch or the request fails
	// with 409 Conflict — the compare-and-swap that keeps two operators
	// (or two replicated routers applying the same plan) from crossing.
	Epoch uint64 `json:"epoch,omitempty"`
}

// MemberList is the GET /v1/admin/members response (and the body of a
// successful membership mutation): the administered member set at one
// membership epoch.
type MemberList struct {
	Epoch       uint64      `json:"epoch"`
	MembersHash string      `json:"members_hash,omitempty"`
	Members     []ShardInfo `json:"members"`
}

// MemberChange reports what one membership mutation (POST or DELETE
// on /v1/admin/members) did.
type MemberChange struct {
	Name string `json:"name"`
	// Draining is true when the member was put into the draining state
	// instead of being removed immediately; the router completes the
	// removal once its running jobs finish (or the drain grace expires).
	Draining bool `json:"draining"`
	// Epoch is the membership epoch after the mutation.
	Epoch uint64 `json:"epoch"`
	// Requeued counts queued jobs re-homed to surviving members (under
	// their journaled idempotency keys: exactly-once).
	Requeued int `json:"requeued"`
	// HandedOff counts terminal job histories migrated to their new
	// rendezvous owner via journal handoff.
	HandedOff int `json:"handed_off"`
	// Lost counts running jobs finalized failed-by-shard-loss (hard
	// removal only; a drain lets them finish).
	Lost int `json:"lost"`
	// Reclaimed counts routes rebound to a joining member that proved —
	// via the first handoff record's idempotency key — that it holds
	// their history (a replacement shard recovered from the dead
	// member's journal).
	Reclaimed int `json:"reclaimed,omitempty"`
}

// PeerStatus is one replicated-router peer as the divergence probe last
// observed it, reported inside RouterReady so an epoch-diverged refusal
// names the peer that disagrees instead of being a bare 503.
type PeerStatus struct {
	Addr      string `json:"addr"`
	Reachable bool   `json:"reachable"`
	// Epoch and MembersHash are the peer's values from its last reached
	// /v1/topology probe; zero/empty while the peer is unreachable.
	Epoch       uint64 `json:"epoch,omitempty"`
	MembersHash string `json:"members_hash,omitempty"`
	// Agree is true when the peer was reached and reported the same
	// epoch and members_hash as this router.
	Agree bool `json:"agree"`
	// Detail explains a disagreement ("peer ahead", "set-hash differs at
	// equal epoch", ...) or the probe error for unreachable peers.
	Detail string `json:"detail,omitempty"`
}

// RouterReady is the router's GET /v1/readyz response: ready while at
// least one shard is alive and the divergence probe has not suspended
// routing.
type RouterReady struct {
	Status string      `json:"status"` // "ok" | "no-shards" | "epoch-diverged"
	Shards []ShardInfo `json:"shards"`
	// Diverged carries the divergence-probe verdict while Status is
	// "epoch-diverged".
	Diverged string `json:"diverged,omitempty"`
	// Peers is the per-peer view behind that verdict, present whenever
	// the router was started with -peers.
	Peers []PeerStatus `json:"peers,omitempty"`
}

// IdempotencyKeyHeader names the POST /v1/jobs request header that
// makes submission retry-safe: submissions repeating a key return the
// first submission's job instead of creating a duplicate.
const IdempotencyKeyHeader = "Idempotency-Key"

// IdempotencyReplayedHeader is set to "true" on a POST /v1/jobs
// response that was answered by an existing job (the request's key had
// been seen before); such responses use 200 rather than 202.
const IdempotencyReplayedHeader = "Idempotency-Replayed"

// MaxIdempotencyKeyLen bounds the accepted key length; longer keys
// are rejected with 400.
const MaxIdempotencyKeyLen = 256

// EpochHeader names the response header a router stamps on every /v1
// response with its current membership epoch. A client that cached
// GET /v1/topology refreshes when the header exceeds the cached epoch —
// the push half of topology discovery, without a watch channel.
const EpochHeader = "Hpas-Epoch"

// ForwardedHeader marks an admin membership mutation that a replicated
// router is relaying to its peers. A router receiving it applies the
// mutation locally but does not re-broadcast it — the loop-prevention
// half of peer mutation replication.
const ForwardedHeader = "Hpas-Forwarded"

// HandoffRecordsHeader names the GET /v1/handoff/{id} response header
// carrying the job's total record count. A receiver interrupted
// mid-transfer compares it against the records it holds and re-requests
// the remainder with ?from=N.
const HandoffRecordsHeader = "Hpas-Handoff-Records"
