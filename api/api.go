// Package api holds the wire types of the hpas-serve HTTP API — the
// request and response bodies of the /v1 endpoints — in one place that
// both the server (hpas/serve) and the Go client (hpas/client) import,
// so the two cannot drift apart.
//
// The types are plain JSON-tagged structs with no behaviour: field
// semantics (defaults, validation) are the server's business and are
// documented here only as far as a client needs to build a request.
package api

import (
	"time"

	"hpas"
)

// JobRequest is the POST /v1/jobs body. A campaign is given either as
// the compact phase string hpas-sim uses ("cpuoccupy@10-40:95,...") or
// as structured Phases; omitting both runs a clean (anomaly-free) job.
type JobRequest struct {
	// Simulated machine and application.
	App          string  `json:"app,omitempty"`
	Nodes        int     `json:"nodes,omitempty"`          // cluster size (default 4)
	RanksPerNode int     `json:"ranks_per_node,omitempty"` // default: all physical cores
	Duration     float64 `json:"duration,omitempty"`       // observed seconds (default 120)
	SamplePeriod float64 `json:"sample_period,omitempty"`  // default 1 s
	Noise        float64 `json:"noise,omitempty"`          // default 0.01
	Seed         uint64  `json:"seed,omitempty"`

	// Anomaly campaign, compact or structured (not both).
	Campaign    string  `json:"campaign,omitempty"`
	AnomalyNode int     `json:"anomaly_node,omitempty"` // compact form target (default 0)
	AnomalyCPU  *int    `json:"anomaly_cpu,omitempty"`  // compact form pin (nil = default 32; explicit 0 is honored)
	Phases      []Phase `json:"phases,omitempty"`

	// Detection pipeline.
	WatchNodes []int   `json:"watch_nodes,omitempty"` // default: node 0
	Window     float64 `json:"window,omitempty"`      // default: detector window
	Stride     float64 `json:"stride,omitempty"`      // default: window (disjoint)
}

// Phase is one timed injection step of a structured campaign.
type Phase struct {
	Label    string      `json:"label"`
	Start    float64     `json:"start"`
	Duration float64     `json:"duration"`
	Specs    []SpecEntry `json:"specs"`
}

// SpecEntry is one anomaly injection within a phase.
type SpecEntry struct {
	Name      string  `json:"name"`
	Node      int     `json:"node"`
	CPU       int     `json:"cpu"`
	Intensity float64 `json:"intensity,omitempty"`
	Level     int     `json:"level,omitempty"` // cachecopy: 1..3
	Size      string  `json:"size,omitempty"`  // e.g. "8GiB"
	Limit     string  `json:"limit,omitempty"`
	Count     int     `json:"count,omitempty"`
	Peer      int     `json:"peer,omitempty"`
}

// JobStatus is the job representation returned by the status
// endpoints (and by POST /v1/jobs on acceptance).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// The timestamps are the documented RFC 3339 exception: clients in
	// every language parse that encoding, and the format is pinned by
	// the API doc, not by Go's marshaller choice.
	//lint:allow apitags documented RFC 3339 wire encoding
	Created time.Time `json:"created"`
	//lint:allow apitags documented RFC 3339 wire encoding
	Started *time.Time `json:"started,omitempty"`
	//lint:allow apitags documented RFC 3339 wire encoding
	Finished *time.Time         `json:"finished,omitempty"`
	Events   []hpas.StreamEvent `json:"events,omitempty"`
	Stream   string             `json:"stream"` // path of the job's message stream
}

// Final reports whether the status describes a terminal job.
func (s JobStatus) Final() bool {
	return hpas.StreamJobState(s.State).Final()
}

// JobList is the GET /v1/jobs response.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// ShardHealth is the GET /v1/readyz (and /readyz) response body of one
// serving instance. The router (cmd/hpas-router) decodes it from every
// shard it health-checks; hpas-serve emits it directly.
type ShardHealth struct {
	Status          string `json:"status"`  // "ok" | "closing"
	Journal         string `json:"journal"` // "none" | "ok" | "degraded"
	Workers         int    `json:"workers"`
	JobsRunning     int64  `json:"jobs_running"`
	QueueDepth      int    `json:"queue_depth"`
	PanicsRecovered int64  `json:"panics_recovered"`
}

// ShardInfo is one member of a routed topology as the router sees it:
// static identity, liveness, and the last health probe.
type ShardInfo struct {
	Name string `json:"name"`
	// Addr is the shard's base URL for remote shards; empty for
	// in-process shards sharing the router's address space.
	Addr  string `json:"addr,omitempty"`
	Alive bool   `json:"alive"`
	// Jobs counts the router-tracked jobs currently owned by this shard
	// (lost jobs keep pointing at the shard that lost them).
	Jobs                int         `json:"jobs"`
	ConsecutiveFailures int         `json:"consecutive_failures,omitempty"`
	LastError           string      `json:"last_error,omitempty"`
	Health              ShardHealth `json:"health"`
}

// RouterStats is the router's own counter block inside GET /v1/metrics
// and GET /v1/topology.
type RouterStats struct {
	JobsRouted      int64 `json:"jobs_routed"`      // submissions placed on a shard
	Replays         int64 `json:"replays"`          // submissions answered by an existing keyed route
	Resubmitted     int64 `json:"resubmitted"`      // queued jobs re-placed after a shard loss
	JobsLost        int64 `json:"jobs_lost"`        // running jobs finalized failed-by-shard-loss
	ShardsDown      int64 `json:"shards_down"`      // alive→down transitions observed
	ShardsRecovered int64 `json:"shards_recovered"` // down→alive transitions observed
	ShardsAlive     int   `json:"shards_alive"`
	RoutesTracked   int   `json:"routes_tracked"`
}

// Topology is the GET /v1/topology response: the routing scheme and the
// member list with per-shard health, plus the router counters.
type Topology struct {
	// Hashing names the placement scheme; currently always
	// "rendezvous/fnv1a-64" (highest-random-weight hashing of the
	// router-assigned job ID over the alive member set).
	Hashing string      `json:"hashing"`
	Shards  []ShardInfo `json:"shards"`
	Router  RouterStats `json:"router"`
}

// RouterReady is the router's GET /v1/readyz response: ready while at
// least one shard is alive.
type RouterReady struct {
	Status string      `json:"status"` // "ok" | "no-shards"
	Shards []ShardInfo `json:"shards"`
}

// IdempotencyKeyHeader names the POST /v1/jobs request header that
// makes submission retry-safe: submissions repeating a key return the
// first submission's job instead of creating a duplicate.
const IdempotencyKeyHeader = "Idempotency-Key"

// IdempotencyReplayedHeader is set to "true" on a POST /v1/jobs
// response that was answered by an existing job (the request's key had
// been seen before); such responses use 200 rather than 202.
const IdempotencyReplayedHeader = "Idempotency-Replayed"

// MaxIdempotencyKeyLen bounds the accepted key length; longer keys
// are rejected with 400.
const MaxIdempotencyKeyLen = 256
