package hpasclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hpas"
	"hpas/api"
)

// fastOpts keeps test backoffs in the microsecond range.
func fastOpts() Options {
	return Options{BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Seed: 1}
}

func TestSubmitRepeatsIdempotencyKeyAcrossRetries(t *testing.T) {
	var attempts atomic.Int32
	keys := make(chan string, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys <- r.Header.Get(api.IdempotencyKeyHeader)
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.Error{Error: "shed"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobStatus{ID: "j0001", State: "queued"})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	st, err := c.Submit(context.Background(), api.JobRequest{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j0001" {
		t.Fatalf("submitted job = %+v", st)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	close(keys)
	first := <-keys
	if first == "" {
		t.Fatal("no idempotency key was generated")
	}
	for k := range keys {
		if k != first {
			t.Fatalf("key changed across retries: %q then %q", first, k)
		}
	}
}

func TestSubmitKeyedReportsReplay(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(api.IdempotencyKeyHeader) != "my-key" {
			t.Errorf("key header = %q, want my-key", r.Header.Get(api.IdempotencyKeyHeader))
		}
		w.Header().Set(api.IdempotencyReplayedHeader, "true")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(api.JobStatus{ID: "j0042", State: "done"})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	st, replayed, err := c.SubmitKeyed(context.Background(), api.JobRequest{}, "my-key")
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || st.ID != "j0042" {
		t.Fatalf("replayed=%v st=%+v, want replay of j0042", replayed, st)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.Error{Error: `unknown field "bogus"`})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	_, err := c.Submit(context.Background(), api.JobRequest{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if ae.Message == "" {
		t.Fatal("error envelope message was dropped")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("400 was retried: %d attempts", got)
	}
	if IsNotFound(err) {
		t.Fatal("400 misclassified as not found")
	}
}

func TestGetListCancelRoundTrip(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.JobStatus{ID: "j1", State: "running"})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.JobList{Jobs: []api.JobStatus{{ID: "j1"}, {ID: "j2"}}})
	})
	mux.HandleFunc("DELETE /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.JobStatus{ID: "j1", State: "cancelled"})
	})
	mux.HandleFunc("GET /v1/jobs/gone", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Error{Error: "no job"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	ctx := context.Background()
	if st, err := c.Get(ctx, "j1"); err != nil || st.State != "running" {
		t.Fatalf("Get = %+v, %v", st, err)
	}
	if jobs, err := c.List(ctx); err != nil || len(jobs) != 2 {
		t.Fatalf("List = %v, %v", jobs, err)
	}
	if st, err := c.Cancel(ctx, "j1"); err != nil || st.State != "cancelled" {
		t.Fatalf("Cancel = %+v, %v", st, err)
	}
	if _, err := c.Get(ctx, "gone"); !IsNotFound(err) {
		t.Fatalf("Get gone = %v, want not-found", err)
	}
}

// sseWrite emits one SSE frame for msg with the given log index.
func sseWrite(w http.ResponseWriter, seq int, msg hpas.StreamMessage) {
	b, _ := json.Marshal(msg)
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, msg.Type, b)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// A server that cuts the stream mid-job must not cost the follower any
// messages: the client reconnects with Last-Event-ID and sees each
// index exactly once through the done frame.
func TestStreamReconnectsWithLastEventID(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch conns.Add(1) {
		case 1:
			if lei := r.Header.Get("Last-Event-ID"); lei != "" {
				t.Errorf("first connection sent Last-Event-ID %q", lei)
			}
			for i := 0; i < 3; i++ {
				sseWrite(w, i, hpas.StreamMessage{Type: "window"})
			}
			// Return without a done frame: the connection dies.
		default:
			if lei := r.Header.Get("Last-Event-ID"); lei != "2" {
				t.Errorf("reconnect sent Last-Event-ID %q, want 2", lei)
			}
			sseWrite(w, 3, hpas.StreamMessage{Type: "event"})
			sseWrite(w, 4, hpas.StreamMessage{Type: "done", State: hpas.StreamJobDone})
		}
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	var seqs []int
	err := c.Stream(context.Background(), "j1", 0, func(m hpas.StreamMessage) error {
		seqs = append(seqs, m.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4}; fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("delivered seqs %v, want %v (no loss, no duplicates)", seqs, want)
	}
	if conns.Load() != 2 {
		t.Fatalf("%d connections, want 2", conns.Load())
	}
}

// A gap frame's Seq is the last skipped index; a resume after the cut
// must continue past the gap, not inside it.
func TestStreamResumesPastGap(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch conns.Add(1) {
		case 1:
			sseWrite(w, 0, hpas.StreamMessage{Type: "window"})
			sseWrite(w, 5, hpas.StreamMessage{Type: "gap", Dropped: 5})
		default:
			if lei := r.Header.Get("Last-Event-ID"); lei != "5" {
				t.Errorf("reconnect sent Last-Event-ID %q, want 5 (past the gap)", lei)
			}
			sseWrite(w, 6, hpas.StreamMessage{Type: "done", State: hpas.StreamJobDone})
		}
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	var types []string
	if err := c.Stream(context.Background(), "j1", 0, func(m hpas.StreamMessage) error {
		types = append(types, m.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(types) != "[window gap done]" {
		t.Fatalf("delivered types %v", types)
	}
}

// Shed stream connections (429) are retried; terminal errors from the
// caller's fn and from the server (404) are not.
func TestStreamRetryAndStopSemantics(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if conns.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Error: "shed"})
			return
		}
		sseWrite(w, 0, hpas.StreamMessage{Type: "done", State: hpas.StreamJobDone})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	if err := c.Stream(context.Background(), "j1", 0, func(hpas.StreamMessage) error { return nil }); err != nil {
		t.Fatalf("shed stream did not recover: %v", err)
	}
	if conns.Load() != 2 {
		t.Fatalf("%d connections, want 2 (one shed, one served)", conns.Load())
	}

	// fn errors stop the follow and surface as-is.
	boom := errors.New("boom")
	err := c.Stream(context.Background(), "j1", 0, func(hpas.StreamMessage) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("fn error surfaced as %v, want boom", err)
	}

	// 404 is terminal: no retry loop.
	nf := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Error{Error: "no job"})
	}))
	defer nf.Close()
	if err := New(nf.URL, fastOpts()).Stream(context.Background(), "nope", 0, nil); !IsNotFound(err) {
		t.Fatalf("missing job stream err = %v, want not-found", err)
	}

	// A stream that never progresses exhausts MaxRetries.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	opts := fastOpts()
	opts.MaxRetries = 2
	if err := New(dead.URL, opts).Stream(context.Background(), "j1", 0, nil); err == nil {
		t.Fatal("dead stream returned nil, want exhausted-retries error")
	}
}

func TestNewIdempotencyKeysAreDistinctAndSeeded(t *testing.T) {
	a, b := New("http://x", Options{Seed: 7}), New("http://x", Options{Seed: 7})
	k1, k2 := a.NewIdempotencyKey(), a.NewIdempotencyKey()
	if k1 == k2 {
		t.Fatalf("consecutive keys collide: %q", k1)
	}
	if len(k1) > api.MaxIdempotencyKeyLen {
		t.Fatalf("key %q longer than server accepts", k1)
	}
	if got := b.NewIdempotencyKey(); got != k1 {
		t.Fatalf("same seed diverged: %q vs %q", got, k1)
	}
}

// catchUpMux fakes a replicated router mid-epoch-catch-up: listings
// succeed at the healthy epoch, while submissions answer 503 with a
// Retry-After hint and a *regressed* epoch header until failFor
// attempts have been consumed (forever when failFor < 0).
func catchUpMux(submits *atomic.Int32, failFor int32, failEpoch string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.EpochHeader, "7")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"jobs":[]}`)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if n := submits.Add(1); failFor < 0 || n <= failFor {
			w.Header().Set(api.EpochHeader, failEpoch)
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.Error{Error: "routing suspended: catching up to peer"})
			return
		}
		w.Header().Set(api.EpochHeader, "7")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobStatus{ID: "g7-0-1", State: "queued"})
	})
	return mux
}

// A 503 whose epoch header trails the highest epoch this client has
// seen is a router mid-catch-up — a bounded, self-healing state — so
// the retry budget stretches past MaxRetries instead of surfacing a
// transient topology hiccup to the caller.
func TestRetryBudgetExtendsWhileRouterCatchesUp(t *testing.T) {
	var submits atomic.Int32
	const failFor = 6 // well past MaxRetries+1 attempts, within the catch-up allowance
	ts := httptest.NewServer(catchUpMux(&submits, failFor, "2"))
	defer ts.Close()

	opts := fastOpts()
	opts.MaxRetries = 2
	c := New(ts.URL, opts)
	// Watermark the healthy epoch first; the regression is judged
	// against the highest epoch the client has observed.
	if _, err := c.List(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 7 {
		t.Fatalf("epoch watermark = %d, want 7", got)
	}

	st, err := c.Submit(context.Background(), api.JobRequest{Seed: 1})
	if err != nil {
		t.Fatalf("submit across the catch-up window: %v", err)
	}
	if st.ID != "g7-0-1" {
		t.Fatalf("submitted job = %+v", st)
	}
	if got := submits.Load(); got != failFor+1 {
		t.Fatalf("server saw %d submit attempts, want %d (budget must stretch across the catch-up)", got, failFor+1)
	}
	// The regressed headers never lowered the watermark.
	if got := c.Epoch(); got != 7 {
		t.Fatalf("epoch watermark after catch-up = %d, want 7", got)
	}
}

// Without an epoch regression the same 503s are ordinary shedding: the
// stock budget applies. And even a genuine regression cannot stretch
// the budget forever — a router wedged in divergence eventually
// surfaces the error.
func TestCatchUpRetriesRequireRegressionAndStayBounded(t *testing.T) {
	for _, tc := range []struct {
		name         string
		failEpoch    string // epoch header on the 503s
		wantAttempts int32
	}{
		{"no regression", "7", 3},     // MaxRetries+1: nothing extends the budget
		{"wedged router", "2", 3 + 8}, // MaxRetries+1 plus the full catch-up allowance
	} {
		t.Run(tc.name, func(t *testing.T) {
			var submits atomic.Int32
			ts := httptest.NewServer(catchUpMux(&submits, -1, tc.failEpoch))
			defer ts.Close()

			opts := fastOpts()
			opts.MaxRetries = 2
			c := New(ts.URL, opts)
			if _, err := c.List(context.Background()); err != nil {
				t.Fatal(err)
			}
			_, err := c.Submit(context.Background(), api.JobRequest{Seed: 1})
			var ae *APIError
			if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("err = %v, want the 503 surfaced", err)
			}
			if got := submits.Load(); got != tc.wantAttempts {
				t.Fatalf("server saw %d submit attempts, want %d", got, tc.wantAttempts)
			}
		})
	}
}
