// Package hpasclient is the Go client for the hpas-serve HTTP API.
//
// It wraps the /v1 endpoints in typed calls and bakes in the client
// half of the service's robustness contract:
//
//   - Submit generates an Idempotency-Key per logical submission and
//     repeats it across retries, so a retried timeout or 429 lands on
//     the job the first attempt created instead of a duplicate.
//   - Every call retries transient failures (connection errors, 429,
//     502, 503, 504) with exponential backoff and seeded jitter,
//     honoring the server's Retry-After hint when one is given.
//   - Stream follows a job's message stream over SSE and reconnects
//     after a cut connection with Last-Event-ID, resuming exactly
//     after the last message it delivered — each message is seen once.
//
// The zero Options are production-reasonable; tests pin Seed and
// shrink the delays.
package hpasclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpas/api"
	"hpas/internal/xrand"
)

// defaultClient is the transport shared by every Client that does not
// bring its own HTTPClient. http.DefaultClient keeps only 2 idle
// connections per host (DefaultMaxIdleConnsPerHost), so fan-out and
// routed workloads re-dial (and re-handshake) constantly under load;
// this clone of the default transport pools enough idle connections
// that the steady state is pure connection reuse. The socket buffers
// are raised from net/http's 4KB to match serve's 32KB flush quantum:
// a stream consumer (the shard proxy above all) then drains one
// coalesced burst in one read syscall instead of eight.
var defaultClient = func() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	t.ReadBufferSize = 64 << 10
	t.WriteBufferSize = 64 << 10
	return &http.Client{Transport: t}
}()

// Options tunes a Client. The zero value is usable.
type Options struct {
	// HTTPClient is the underlying transport. The default is a shared
	// client whose transport pools generously (64 idle connections per
	// host vs net/http's 2), sized for routed fan-out workloads.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try of a call,
	// and consecutive no-progress reconnects of a Stream follow.
	// 0 means the default (4); negative disables retries.
	MaxRetries int
	// BaseDelay seeds the exponential backoff (default 100ms); the
	// delay doubles per attempt up to MaxDelay (default 5s). A server
	// Retry-After overrides the computed delay when larger.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed fixes the jitter and idempotency-key stream for
	// reproducible tests. 0 seeds from the clock.
	Seed int64
}

// Client talks to one hpas-serve instance.
type Client struct {
	base string
	http *http.Client

	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration

	mu  sync.Mutex // guards rng
	rng *xrand.RNG

	epoch epochWatermark // highest membership epoch seen (see topology.go)
	topo  topoCache      // epoch-keyed /v1/topology cache
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is trimmed.
func New(baseURL string, opts Options) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		http:       opts.HTTPClient,
		maxRetries: opts.MaxRetries,
		baseDelay:  opts.BaseDelay,
		maxDelay:   opts.MaxDelay,
	}
	if c.http == nil {
		c.http = defaultClient
	}
	if c.maxRetries == 0 {
		c.maxRetries = 4
	}
	if c.maxRetries < 0 {
		c.maxRetries = 0
	}
	if c.baseDelay <= 0 {
		c.baseDelay = 100 * time.Millisecond
	}
	if c.maxDelay <= 0 {
		c.maxDelay = 5 * time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c.rng = xrand.New(uint64(seed))
	return c
}

// APIError is a non-2xx response from the server, carrying the decoded
// error envelope when one was sent.
type APIError struct {
	StatusCode int
	Message    string

	// retryAfter is the server's Retry-After hint, consulted by the
	// retry loops; zero when absent.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("server returned %d", e.StatusCode)
	}
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports whether err is a 404 from the server.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// Submit submits the job request under a freshly generated idempotency
// key. Retries reuse the key, so a submission that times out after the
// server accepted it resolves to the accepted job, not a duplicate.
func (c *Client) Submit(ctx context.Context, req api.JobRequest) (api.JobStatus, error) {
	st, _, err := c.SubmitKeyed(ctx, req, c.NewIdempotencyKey())
	return st, err
}

// SubmitKeyed submits under the caller's idempotency key (empty
// disables idempotency). replayed reports that the server answered with
// a job a previous submission under the same key had created.
func (c *Client) SubmitKeyed(ctx context.Context, req api.JobRequest, key string) (st api.JobStatus, replayed bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return st, false, err
	}
	return c.SubmitRawKeyed(ctx, body, key)
}

// SubmitRawKeyed is SubmitKeyed taking the request pre-encoded: body
// must be one JSON document in api.JobRequest's wire form. Proxies
// that already hold the encoded submission — the shard router forwards
// the client's bytes verbatim — use it to skip a decode→re-encode per
// hop and per retry; the server revalidates the body on arrival
// exactly as it would a typed submission.
func (c *Client) SubmitRawKeyed(ctx context.Context, body []byte, key string) (st api.JobStatus, replayed bool, err error) {
	hdr := http.Header{"Content-Type": {"application/json"}}
	if key != "" {
		hdr.Set(api.IdempotencyKeyHeader, key)
	}
	resp, err := c.doRetry(ctx, http.MethodPost, "/v1/jobs", body, hdr, &st)
	if err != nil {
		return st, false, err
	}
	return st, resp.Header.Get(api.IdempotencyReplayedHeader) == "true", nil
}

// NewIdempotencyKey returns a fresh key from the client's seeded
// stream. Exposed so callers can hold a key across process boundaries.
func (c *Client) NewIdempotencyKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("hpasc-%016x", c.rng.Uint64())
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	_, err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &st)
	return st, err
}

// List fetches all jobs the server knows, oldest first.
func (c *Client) List(ctx context.Context) ([]api.JobStatus, error) {
	var l api.JobList
	_, err := c.doRetry(ctx, http.MethodGet, "/v1/jobs", nil, nil, &l)
	return l.Jobs, err
}

// Cancel cancels a queued or running job and returns its status.
// Cancelling an already-finished job is not an error.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	_, err := c.doRetry(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, &st)
	return st, err
}

// retryable reports whether the status code signals a transient
// condition worth retrying: admission shed (429), or a gateway/server
// hiccup (502/503/504).
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the attempt's delay: exponential from BaseDelay
// capped at MaxDelay, jittered to half..full, then raised to the
// server's Retry-After if that asks for more.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.baseDelay << uint(attempt)
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Intn(int(d/2)+1))
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func parseRetryAfter(h http.Header) time.Duration {
	if s := h.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 0
}

// catchUpRetries bounds the extra retry budget granted on top of
// MaxRetries while a router is visibly catching up to its peers (see
// routerCatchingUp). The condition is self-limiting — the router either
// adopts its peer's member set within a few probe rounds or the epoch
// header stops regressing — so the bound only guards against a router
// wedged in divergence forever.
const catchUpRetries = 8

// routerCatchingUp reports whether a failed attempt is a replicated
// router mid-catch-up: 503 with a Retry-After hint whose membership
// epoch trails the highest epoch this client has already observed. That
// regression means the router suspended routing because a peer is ahead
// — a bounded, self-healing state worth waiting out on the same base
// URL rather than surfacing to the caller.
func (c *Client) routerCatchingUp(resp *http.Response, ae *APIError) bool {
	if ae == nil || ae.StatusCode != http.StatusServiceUnavailable || resp == nil {
		return false
	}
	if resp.Header.Get("Retry-After") == "" {
		return false
	}
	s := resp.Header.Get(api.EpochHeader)
	if s == "" {
		return false
	}
	n, err := strconv.ParseUint(s, 10, 64)
	return err == nil && n < c.Epoch()
}

// doRetry performs one API call with the retry policy, decoding a 2xx
// body into out (when non-nil) and non-2xx bodies into an *APIError.
// The returned response's body is already consumed and closed.
func (c *Client) doRetry(ctx context.Context, method, path string, body []byte, hdr http.Header, out any) (*http.Response, error) {
	var lastErr error
	extra := 0 // catch-up retries granted beyond maxRetries
	for attempt := 0; ; attempt++ {
		resp, err := c.doOnce(ctx, method, path, body, hdr, out)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var ae *APIError
		transient := !errors.As(err, &ae) || retryable(ae.StatusCode)
		if transient && attempt >= c.maxRetries+extra && extra < catchUpRetries && c.routerCatchingUp(resp, ae) {
			extra++
		}
		if !transient || attempt >= c.maxRetries+extra || ctx.Err() != nil {
			return nil, lastErr
		}
		var ra time.Duration
		if resp != nil {
			ra = parseRetryAfter(resp.Header)
		}
		if err := sleep(ctx, c.backoff(attempt, ra)); err != nil {
			return nil, lastErr
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, hdr http.Header, out any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	c.noteEpoch(resp.Header)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope api.Error
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope)
		return resp, &APIError{StatusCode: resp.StatusCode, Message: envelope.Error}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp, fmt.Errorf("decoding %s %s response: %w", method, path, err)
		}
	}
	return resp, nil
}
