// The router serves the same /v1 surface as a single hpas-serve
// instance, so the client must work against it unchanged. This test
// lives in the external package because the shard router itself links
// hpasclient for its HTTP backend.
package hpasclient_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hpas"
	"hpas/api"
	hpasclient "hpas/client"
	"hpas/internal/shard"
	"hpas/serve"
)

var (
	routerDetOnce sync.Once
	routerDet     *hpas.Detector
	routerDetErr  error
)

func routerDetector(t *testing.T) *hpas.Detector {
	t.Helper()
	routerDetOnce.Do(func() {
		ds, err := hpas.GenerateDataset(hpas.DatasetConfig{
			Apps:    []string{"CoMD"},
			Classes: []string{"none", "cpuoccupy"},
			Reps:    3,
			Window:  12,
			Warmup:  2,
			Seed:    31,
		})
		if err != nil {
			routerDetErr = err
			return
		}
		routerDet, routerDetErr = hpas.TrainDetector(ds, 10, 31)
	})
	if routerDetErr != nil {
		t.Fatalf("training test detector: %v", routerDetErr)
	}
	return routerDet
}

// jobReq is a minimal valid request: seeded, short, default app.
func jobReq(seed uint64, duration float64) api.JobRequest {
	return api.JobRequest{Seed: seed, Duration: duration, Window: 10}
}

// TestClientAgainstRouter drives the full client verb set through a
// router over two in-process shards: routed submit, keyed replay, get,
// merged list, stream-to-done, and cancel must all behave exactly as
// they do against one server.
func TestClientAgainstRouter(t *testing.T) {
	det := routerDetector(t)
	var members []shard.Member
	for _, name := range []string{"shard0", "shard1"} {
		mgr := hpas.NewStreamManager(hpas.StreamConfig{Workers: 2, Queue: 16})
		defer mgr.Close()
		members = append(members, shard.Member{
			Name:    name,
			Backend: shard.NewLocal(mgr, serve.New(mgr, det, serve.Config{})),
		})
	}
	rt, err := shard.NewRouter(members, shard.Config{
		CheckInterval: 100 * time.Millisecond,
		FailAfter:     2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c := hpasclient.New(ts.URL, hpasclient.Options{
		BaseDelay: time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
		Seed:      7,
	})

	// Submit a short job and stream it to completion: every message in
	// order, terminated by the done frame.
	st, err := c.Submit(ctx, jobReq(3, 30))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Stream != "/v1/jobs/"+st.ID+"/stream" {
		t.Fatalf("submitted job = %+v, want a routed ID with a matching stream path", st)
	}
	var msgs []hpas.StreamMessage
	if err := c.Stream(ctx, st.ID, 0, func(m hpas.StreamMessage) error {
		msgs = append(msgs, m)
		return nil
	}); err != nil {
		t.Fatalf("stream through router: %v", err)
	}
	for i, m := range msgs {
		if m.Seq != i {
			t.Fatalf("message %d has seq %d; routed streams must be contiguous", i, m.Seq)
		}
	}
	if last := msgs[len(msgs)-1]; last.Type != "done" || last.State != hpas.StreamJobDone {
		t.Fatalf("stream ended with %+v, want a done frame", last)
	}

	got, err := c.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "done" {
		t.Fatalf("get after stream = %+v, want done", got)
	}

	// Keyed submits replay through the router, not just at one shard.
	first, replayed, err := c.SubmitKeyed(ctx, jobReq(4, 30), "router-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("fresh keyed submit reported as replay")
	}
	again, replayed, err := c.SubmitKeyed(ctx, jobReq(4, 30), "router-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || again.ID != first.ID {
		t.Fatalf("replay = (%+v, %v), want the original job %s back", again, replayed, first.ID)
	}

	// Cancel an endless job; the client sees the terminal state.
	run, err := c.Submit(ctx, jobReq(5, 200000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, run.ID); err != nil {
		t.Fatal(err)
	}
	for {
		cst, err := c.Get(ctx, run.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cst.Final() {
			if cst.State != "cancelled" {
				t.Fatalf("cancelled job ended %s, want cancelled", cst.State)
			}
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("cancel never became final")
		case <-time.After(20 * time.Millisecond):
		}
	}

	// The merged listing covers jobs from both shards in a stable order.
	l1, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) != 3 {
		t.Fatalf("listing holds %d jobs, want 3", len(l1))
	}
	l2, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l1 {
		if l1[i].ID != l2[i].ID {
			t.Fatalf("listing order flapped at %d: %s vs %s", i, l1[i].ID, l2[i].ID)
		}
	}

	if hpasclient.IsNotFound(func() error { _, err := c.Get(ctx, "g99999"); return err }()) == false {
		t.Fatal("unknown routed job did not surface as not-found")
	}
}
