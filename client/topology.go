package hpasclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"hpas/api"
)

// Topology discovery and journal handoff: the client half of the
// router's dynamic-membership contract.
//
// Every /v1 response from a router carries its membership epoch in the
// api.EpochHeader; the client watermarks the highest epoch it has seen
// (Epoch) and keys its cached GET /v1/topology document by it, so a
// membership change observed on any call — a submit, a stream frame, a
// probe — invalidates the cache and the next Topology call refetches.
// That makes /v1/topology the canonical discovery document without a
// watch channel: react to epoch movement, not to polling cadence.

// topoCache is the client's epoch-keyed topology document.
type topoCache struct {
	mu    sync.Mutex
	doc   api.Topology
	epoch uint64 // epoch the cached doc was fetched at
	valid bool
}

// epochWatermark tracks the highest api.EpochHeader seen; it lives
// outside Client's option fields so the zero value stays cheap.
type epochWatermark struct{ v atomic.Uint64 }

func (w *epochWatermark) note(h http.Header) {
	s := h.Get(api.EpochHeader)
	if s == "" {
		return
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return
	}
	for {
		cur := w.v.Load()
		if n <= cur || w.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Epoch returns the highest membership epoch observed in any response
// from this server, 0 before one has been seen. A jump between two
// calls means the member set changed in between.
func (c *Client) Epoch() uint64 { return c.epoch.v.Load() }

// noteEpoch records a response's membership epoch, if it carries one.
func (c *Client) noteEpoch(h http.Header) { c.epoch.note(h) }

// Topology fetches GET /v1/topology — the canonical discovery document:
// hashing scheme, membership epoch, and the per-member state, health,
// and probe-failure counts. The document is cached and served from
// cache while the observed epoch matches the epoch it was fetched at;
// any response revealing a newer epoch invalidates it.
func (c *Client) Topology(ctx context.Context) (api.Topology, error) {
	seen := c.Epoch()
	c.topo.mu.Lock()
	if c.topo.valid && c.topo.epoch >= seen {
		doc := c.topo.doc
		c.topo.mu.Unlock()
		return doc, nil
	}
	c.topo.mu.Unlock()

	var doc api.Topology
	if _, err := c.doRetry(ctx, http.MethodGet, "/v1/topology", nil, nil, &doc); err != nil {
		return api.Topology{}, err
	}
	c.topo.mu.Lock()
	if !c.topo.valid || doc.Epoch >= c.topo.epoch {
		c.topo.doc = doc
		c.topo.epoch = doc.Epoch
		c.topo.valid = true
	}
	c.topo.mu.Unlock()
	return doc, nil
}

// Handoff streams job id's journal records from record offset from,
// calling fn once per record line (without its newline). It returns the
// job's total record count, so a transfer cut mid-stream resumes with
// from set to the number of records already received. The line passed
// to fn is only valid until fn returns; copy to retain. Handoff does
// not retry — the caller owns resumption, that being the point of the
// offset — and surfaces non-2xx responses as *APIError (409 means the
// job is not terminal yet).
func (c *Client) Handoff(ctx context.Context, id string, from int, fn func(rec []byte) error) (total int, err error) {
	path := c.base + "/v1/handoff/" + id
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	c.noteEpoch(resp.Header)
	if resp.StatusCode != http.StatusOK {
		ae := &APIError{StatusCode: resp.StatusCode, retryAfter: parseRetryAfter(resp.Header)}
		var envelope api.Error
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope)
		ae.Message = envelope.Error
		return 0, ae
	}
	total, _ = strconv.Atoi(resp.Header.Get(api.HandoffRecordsHeader))

	br := bufio.NewReaderSize(resp.Body, 64*1024)
	for {
		line, rerr := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			rec := bytes.TrimSuffix(line, []byte{'\n'})
			rec = bytes.TrimSuffix(rec, []byte{'\r'})
			if err := fn(rec); err != nil {
				return total, err
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, fmt.Errorf("handoff %s: %w", id, rerr)
		}
	}
}

// Adopt posts a job history — record lines as produced by Handoff — to
// the server's adopt endpoint under job id. replayed reports that the
// history's idempotency key already named a job there (the server
// deduped instead of importing).
func (c *Client) Adopt(ctx context.Context, id string, recs [][]byte) (st api.JobStatus, replayed bool, err error) {
	body := bytes.Join(recs, []byte{'\n'})
	body = append(body, '\n')
	hdr := http.Header{"Content-Type": {"application/x-ndjson"}}
	resp, err := c.doRetry(ctx, http.MethodPost, "/v1/handoff/"+id, body, hdr, &st)
	if err != nil {
		return st, false, err
	}
	return st, resp.Header.Get(api.IdempotencyReplayedHeader) == "true", nil
}
