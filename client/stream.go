package hpasclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hpas"
)

// Stream follows job id's message stream from log index from (0 =
// start), calling fn for every message in order until the job's final
// "done" message, which is delivered too. Each message's Seq carries
// its log index.
//
// The follow rides SSE so the connection is resumable: when it is cut
// mid-stream — a crashed proxy, a bounced server, an admission shed —
// Stream backs off and reconnects with Last-Event-ID set to the last
// index fn saw, so no message is delivered twice and none is lost. A
// "gap" frame advances the resume point past the dropped region (its
// Seq is the last skipped index), exactly as the server's follow
// semantics define. Reconnects that made progress reset the retry
// budget; MaxRetries bounds only consecutive fruitless attempts.
//
// A non-nil error from fn stops the follow and is returned as-is.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(hpas.StreamMessage) error) error {
	next := from
	failures := 0
	for {
		last, err := c.streamOnce(ctx, id, next, fn)
		if err == nil {
			return nil // clean done frame
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var fe *fnError
		if errors.As(err, &fe) {
			return fe.err
		}
		var ae *APIError
		if errors.As(err, &ae) && !retryable(ae.StatusCode) {
			return err // 404 and friends: retrying cannot help
		}
		if last >= next {
			next = last + 1
			failures = 0
		} else {
			failures++
			if failures > c.maxRetries {
				return fmt.Errorf("stream %s: %d consecutive failed attempts: %w", id, failures, err)
			}
		}
		var ra time.Duration
		if ae != nil {
			ra = ae.retryAfter
		}
		if serr := sleep(ctx, c.backoff(failures, ra)); serr != nil {
			return err
		}
	}
}

// fnError marks an error raised by the caller's fn, to be returned
// as-is rather than retried.
type fnError struct{ err error }

func (e *fnError) Error() string { return e.err.Error() }

// streamOnce runs one SSE connection delivering messages from index
// `from` on. It returns the highest log index it delivered (from-1 if
// none) and nil after a done frame, or the connection's terminal error.
func (c *Client) streamOnce(ctx context.Context, id string, from int, fn func(hpas.StreamMessage) error) (last int, err error) {
	last = from - 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return last, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(from-1))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ae := &APIError{StatusCode: resp.StatusCode, retryAfter: parseRetryAfter(resp.Header)}
		var envelope struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&envelope)
		ae.Message = envelope.Error
		return last, ae
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	seq, data, sawData := -1, "", false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if !sawData {
				continue // heartbeat / separator noise
			}
			var msg hpas.StreamMessage
			if err := json.Unmarshal([]byte(data), &msg); err != nil {
				return last, fmt.Errorf("bad SSE frame %q: %w", data, err)
			}
			if seq >= 0 {
				msg.Seq = seq
			}
			if err := fn(msg); err != nil {
				return last, &fnError{err}
			}
			if seq > last {
				last = seq
			}
			if msg.Type == "done" {
				return last, nil
			}
			seq, data, sawData = -1, "", false
		case strings.HasPrefix(line, "id: "):
			seq, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "data: "):
			data, sawData = strings.TrimPrefix(line, "data: "), true
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, fmt.Errorf("stream %s ended before the job's done message", id)
}
