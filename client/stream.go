package hpasclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpas"
)

// Stream follows job id's message stream from log index from (0 =
// start), calling fn for every message in order until the job's final
// "done" message, which is delivered too. Each message's Seq carries
// its log index.
//
// The follow rides SSE so the connection is resumable: when it is cut
// mid-stream — a crashed proxy, a bounced server, an admission shed —
// Stream backs off and reconnects with Last-Event-ID set to the last
// index fn saw, so no message is delivered twice and none is lost. A
// "gap" frame advances the resume point past the dropped region (its
// Seq is the last skipped index), exactly as the server's follow
// semantics define. Reconnects that made progress reset the retry
// budget; MaxRetries bounds only consecutive fruitless attempts.
//
// A non-nil error from fn stops the follow and is returned as-is.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(hpas.StreamMessage) error) error {
	return c.streamLoop(ctx, id, from, func(ctx context.Context, from int) (int, error) {
		return c.streamOnce(ctx, id, from, fn)
	})
}

// StreamFrames is Stream delivering wire-encoded frames instead of
// decoded messages: fn receives each SSE frame's event ID (Seq), event
// type, and raw data bytes without the client unmarshaling them. The
// shard router's stream proxy rides this to pass shard bytes through
// to its own client verbatim — no decode→re-encode per message per
// hop. Frame.Raw carries the frame's complete SSE block so an SSE
// re-emitter forwards one slice verbatim. Frame.Data and Frame.Raw
// alias a buffer reused for the next frame: they are valid only until
// fn returns, and fn must copy them to retain them.
// Frame.More is set when more frame bytes are already buffered on the
// connection, so a batching consumer can defer its flush. Reconnect
// and resume semantics are identical to Stream's.
func (c *Client) StreamFrames(ctx context.Context, id string, from int, fn func(hpas.StreamFrame) error) error {
	return c.streamLoop(ctx, id, from, func(ctx context.Context, from int) (int, error) {
		return c.streamFramesOnce(ctx, id, from, fn)
	})
}

// streamLoop is the reconnect-and-resume skeleton shared by Stream and
// StreamFrames: once runs a single connection from the given index and
// reports the highest index it delivered; the loop resumes just past
// it, resetting the retry budget whenever an attempt made progress.
func (c *Client) streamLoop(ctx context.Context, id string, from int, once func(context.Context, int) (int, error)) error {
	next := from
	failures := 0
	for {
		last, err := once(ctx, next)
		if err == nil {
			return nil // clean done frame
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var fe *fnError
		if errors.As(err, &fe) {
			return fe.err
		}
		var ae *APIError
		if errors.As(err, &ae) && !retryable(ae.StatusCode) {
			return err // 404 and friends: retrying cannot help
		}
		if last >= next {
			next = last + 1
			failures = 0
		} else {
			failures++
			if failures > c.maxRetries {
				return fmt.Errorf("stream %s: %d consecutive failed attempts: %w", id, failures, err)
			}
		}
		var ra time.Duration
		if ae != nil {
			ra = ae.retryAfter
		}
		if serr := sleep(ctx, c.backoff(failures, ra)); serr != nil {
			return err
		}
	}
}

// fnError marks an error raised by the caller's fn, to be returned
// as-is rather than retried.
type fnError struct{ err error }

func (e *fnError) Error() string { return e.err.Error() }

// streamOnce runs one SSE connection delivering messages from index
// `from` on. It returns the highest log index it delivered (from-1 if
// none) and nil after a done frame, or the connection's terminal error.
func (c *Client) streamOnce(ctx context.Context, id string, from int, fn func(hpas.StreamMessage) error) (last int, err error) {
	last = from - 1
	resp, err := c.streamConnect(ctx, id, from)
	if err != nil {
		return last, err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	seq, data, sawData := -1, "", false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if !sawData {
				continue // heartbeat / separator noise
			}
			var msg hpas.StreamMessage
			if err := json.Unmarshal([]byte(data), &msg); err != nil {
				return last, fmt.Errorf("bad SSE frame %q: %w", data, err)
			}
			if seq >= 0 {
				msg.Seq = seq
			}
			if err := fn(msg); err != nil {
				return last, &fnError{err}
			}
			if seq > last {
				last = seq
			}
			if msg.Type == "done" {
				return last, nil
			}
			seq, data, sawData = -1, "", false
		case strings.HasPrefix(line, "id: "):
			seq, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "data: "):
			data, sawData = strings.TrimPrefix(line, "data: "), true
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, fmt.Errorf("stream %s ended before the job's done message", id)
}

// streamConnect opens one SSE connection resuming at log index from,
// returning the response with a 200 status; any other status is closed
// and translated into an *APIError for the retry loop.
func (c *Client) streamConnect(ctx context.Context, id string, from int) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(from-1))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	c.noteEpoch(resp.Header)
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		ae := &APIError{StatusCode: resp.StatusCode, retryAfter: parseRetryAfter(resp.Header)}
		var envelope struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&envelope)
		ae.Message = envelope.Error
		return nil, ae
	}
	return resp, nil
}

// maxFrameLine bounds one SSE line, matching streamOnce's scanner
// limit, so a corrupt or hostile stream cannot grow a line without
// bound.
const maxFrameLine = 1 << 20

// frameReaderPool recycles the buffered readers behind
// streamFramesOnce; each is Reset onto its connection before use, and
// nothing delivered to callers aliases the reader's buffer.
var frameReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64*1024) },
}

// streamFramesOnce is streamOnce without the decode: it parses SSE
// lines into hpas.StreamFrames, copying each frame's data bytes but
// never unmarshaling them. The frame's type comes from the event:
// line, which serve always emits, and terminal detection keys off
// Type == "done" — the same condition streamOnce reads out of the
// decoded message.
func (c *Client) streamFramesOnce(ctx context.Context, id string, from int, fn func(hpas.StreamFrame) error) (last int, err error) {
	last = from - 1
	resp, err := c.streamConnect(ctx, id, from)
	if err != nil {
		return last, err
	}
	defer resp.Body.Close()

	br := frameReaderPool.Get().(*bufio.Reader)
	br.Reset(resp.Body)
	defer func() {
		br.Reset(nil) // drop the body reference before pooling
		frameReaderPool.Put(br)
	}()

	// Each frame's lines are accumulated verbatim (with \n line endings)
	// into block, reused frame-over-frame: it becomes Frame.Raw so the
	// proxy can re-emit the block in one write, and Frame.Data is sliced
	// out of it by offset. Both are only promised valid until fn returns.
	seq, event, sawData := -1, "", false
	var block []byte
	dataOff, dataEnd := 0, 0
	for {
		line, rerr := readFrameLine(br)
		if rerr != nil {
			if rerr == io.EOF {
				return last, fmt.Errorf("stream %s ended before the job's done message", id)
			}
			return last, rerr
		}
		switch {
		case len(line) == 0:
			if !sawData {
				block = block[:0] // drop heartbeat / separator noise
				continue
			}
			block = append(block, '\n')
			f := hpas.StreamFrame{
				Seq:  seq,
				Type: event,
				Data: block[dataOff:dataEnd],
				More: br.Buffered() > 0,
				Raw:  block,
			}
			if err := fn(f); err != nil {
				return last, &fnError{err}
			}
			if seq > last {
				last = seq
			}
			if event == "done" {
				return last, nil
			}
			seq, event, sawData = -1, "", false
			block = block[:0]
		case bytes.HasPrefix(line, []byte("id: ")):
			seq, _ = strconv.Atoi(string(line[len("id: "):]))
			block = append(block, line...)
			block = append(block, '\n')
		case bytes.HasPrefix(line, []byte("event: ")):
			event = internEvent(line[len("event: "):])
			block = append(block, line...)
			block = append(block, '\n')
		case bytes.HasPrefix(line, []byte("data: ")):
			// Offsets are recorded now and sliced at emit time, so a
			// block reallocation from a later append cannot strand them.
			dataOff = len(block) + len("data: ")
			dataEnd = len(block) + len(line)
			block = append(block, line...)
			block = append(block, '\n')
			sawData = true
		}
	}
}

// internEvent maps the stream's fixed event vocabulary onto static
// strings so the hot parse loop does not allocate a string per frame;
// anything unrecognized still gets its own copy.
func internEvent(b []byte) string {
	switch string(b) { // compiler elides the conversion in a switch
	case "window":
		return "window"
	case "event":
		return "event"
	case "gap":
		return "gap"
	case "done":
		return "done"
	}
	return string(b)
}

// readFrameLine reads one line (sans EOL) from br, tolerating lines
// longer than the reader's buffer up to maxFrameLine. The returned
// slice aliases the reader's buffer (or a temporary) and is only valid
// until the next read.
func readFrameLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		long := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			if len(long) > maxFrameLine {
				return nil, fmt.Errorf("SSE line exceeds %d bytes", maxFrameLine)
			}
			line, err = br.ReadSlice('\n')
			long = append(long, line...)
		}
		line = long
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1] // trailing \n
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}
